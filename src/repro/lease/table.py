"""Server-side lease bookkeeping.

The :class:`LeaseTable` records, per datum, which clients hold leases and
which writes are waiting.  It enforces the paper's two server-side rules:

* a write may commit only once **every** live leaseholder has approved it or
  let its lease expire;
* while a write is waiting, **no new leases are granted** on that datum
  (footnote 1 — this prevents write starvation).

The table is pure bookkeeping: it never does I/O and takes an explicit
``now`` everywhere, so the protocol engines can drive it from simulated or
real time.  Storage cost matches the paper's observation: a couple of
references per lease, indexed both by datum and by holder.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import LeaseDeniedError
from repro.lease.lease import Lease
from repro.obs.bus import NULL_BUS
from repro.obs.events import LEASE_EXPIRE, LEASE_GRANT, LEASE_RELEASE, LEASE_RENEW
from repro.types import DatumId, HostId


@dataclass
class PendingWrite:
    """A write waiting for leaseholder approval or lease expiry.

    Attributes:
        datum: the datum being written.
        writer: the requesting client (its approval is implicit, §3.1).
        write_id: server-assigned id used to match approval replies.
        awaiting: holders whose approval is still outstanding.
        expiries: each awaited holder's lease expiry as of ``begin_write``
            (no lease can be renewed while the write is pending — the
            starvation guard — so these stay accurate).
    """

    datum: DatumId
    writer: HostId
    write_id: int
    awaiting: set[HostId] = field(default_factory=set)
    expiries: dict[HostId, float] = field(default_factory=dict)

    @property
    def deadline(self) -> float:
        """When every *still-awaited* lease will have expired.

        Dynamic on purpose: an approval or a voluntary relinquish removes
        a holder from ``awaiting`` and may pull the deadline in (found by
        the stateful property tests — a frozen deadline made writes wait
        for leases that no longer existed).  ``inf`` while an awaited
        lease is infinite; ``-inf`` once nothing is awaited.
        """
        return max(
            (self.expiries[holder] for holder in self.awaiting),
            default=float("-inf"),
        )

    def ready(self, now: float) -> bool:
        """True once the write may commit: all approved or all expired."""
        return not self.awaiting or now >= self.deadline


class LeaseTable:
    """All lease state held by one server."""

    def __init__(self, obs: Any = None, owner: HostId | None = None) -> None:
        """Args:
            obs: optional :class:`~repro.obs.bus.TraceBus` receiving
                ``lease.*`` lifecycle events.
            owner: host id stamped on emitted events (the owning server).
        """
        self._by_datum: dict[DatumId, dict[HostId, Lease]] = {}
        self._by_holder: dict[HostId, set[DatumId]] = {}
        self._pending: dict[DatumId, deque[PendingWrite]] = {}
        #: Earliest expiry among each datum's leases, maintained lazily so
        #: :meth:`_prune` can skip its holder scan while nothing can have
        #: expired.  May run *stale-low* (a renewal or release can raise
        #: the true minimum without updating it), which only costs one
        #: recomputing scan — never stale-high, which would skip a prune
        #: that has work to do.
        self._min_expiry: dict[DatumId, float] = {}
        self._next_write_id = 1
        #: Largest term ever granted; a recovering server must delay all
        #: writes for this long (paper §2's crash-recovery rule).
        self.max_term_granted = 0.0
        self.obs = obs or NULL_BUS
        self.owner = owner

    # -- grants -------------------------------------------------------------

    def grant(self, datum: DatumId, holder: HostId, now: float, term: float) -> Lease:
        """Grant or extend a lease on ``datum`` to ``holder``.

        Raises:
            LeaseDeniedError: when a write is pending on the datum (the
                starvation guard) — callers normally check
                :meth:`write_pending` first and queue the request instead.
        """
        if self._pending and self._pending.get(datum):
            raise LeaseDeniedError(f"write pending on {datum}; no new leases")
        if term < 0:
            raise ValueError(f"negative lease term: {term}")
        self._prune(datum, now)
        by_datum = self._by_datum
        holders = by_datum.get(datum)
        if holders is None:
            holders = by_datum[datum] = {}
        lease = holders.get(holder)
        renewal = lease is not None and now < lease.expires_at
        if renewal:
            # Lease.renew, inlined (extension never shortens a lease).
            lease.granted_at = now
            lease.term = term
            expires = now + term
            if expires > lease.expires_at:
                lease.expires_at = expires
        else:
            lease = Lease.granted(datum, holder, now, term)
            holders[holder] = lease
            min_expiry = self._min_expiry.get(datum)
            if min_expiry is None or lease.expires_at < min_expiry:
                self._min_expiry[datum] = lease.expires_at
        held = self._by_holder.get(holder)
        if held is None:
            held = self._by_holder[holder] = set()
        held.add(datum)
        if term > self.max_term_granted:
            self.max_term_granted = term
        if self.obs.active:
            self.obs.emit(
                LEASE_RENEW if renewal else LEASE_GRANT, now, self.owner,
                datum=str(datum), holder=holder, term=term,
            )
        return lease

    def release(self, datum: DatumId, holder: HostId, now: float = 0.0) -> None:
        """Relinquish a lease voluntarily (client option, §4).

        Args:
            now: event timestamp for tracing (bookkeeping is time-free).
        """
        holders = self._by_datum.get(datum)
        if holders and holder in holders:
            del holders[holder]
            if not holders:
                del self._by_datum[datum]
                self._min_expiry.pop(datum, None)
            if self.obs.active:
                self.obs.emit(
                    LEASE_RELEASE, now, self.owner, datum=str(datum), holder=holder
                )
        held = self._by_holder.get(holder)
        if held:
            held.discard(datum)
            if not held:
                del self._by_holder[holder]
        self._on_holder_gone(datum, holder)

    def release_holder(self, holder: HostId, now: float = 0.0) -> None:
        """Drop every lease held by ``holder`` (e.g. observed client death)."""
        for datum in list(self._by_holder.get(holder, ())):
            self.release(datum, holder, now)

    # -- queries ------------------------------------------------------------

    def lease_of(self, datum: DatumId, holder: HostId) -> Lease | None:
        """The lease record, valid or not, or None if never granted."""
        return self._by_datum.get(datum, {}).get(holder)

    def live_holders(self, datum: DatumId, now: float) -> set[HostId]:
        """Clients whose leases on ``datum`` are still valid at ``now``."""
        return {
            holder
            for holder, lease in self._by_datum.get(datum, {}).items()
            if now < lease.expires_at
        }

    def holdings(self, holder: HostId) -> set[DatumId]:
        """Datums on which ``holder`` has a (possibly expired) lease."""
        return set(self._by_holder.get(holder, ()))

    def lease_count(self) -> int:
        """Total lease records currently stored (storage-cost metric, §2)."""
        return sum(len(holders) for holders in self._by_datum.values())

    def iter_leases(self) -> Iterator[Lease]:
        """Iterate over every stored lease record."""
        for holders in self._by_datum.values():
            yield from holders.values()

    def max_expiry_of(self, datum: DatumId, now: float) -> float:
        """Latest expiry among valid leases on one datum (``now`` if none).

        Used as the write barrier when a datum is promoted into an
        installed cover: per-client leases granted before the promotion
        must still be honored even though covered grants keep no records.
        """
        expiries = [
            lease.expires_at
            for lease in self._by_datum.get(datum, {}).values()
            if lease.valid(now)
        ]
        return max(expiries, default=now)

    def max_outstanding_expiry(self, now: float) -> float:
        """Latest expiry among currently valid leases (``now`` if none).

        A cleanly recovering server could delay writes only until this time;
        a server recovering from a crash does not have this information and
        must fall back on :attr:`max_term_granted`.
        """
        expiries = [
            lease.expires_at for lease in self.iter_leases() if lease.valid(now)
        ]
        return max(expiries, default=now)

    # -- writes ----------------------------------------------------------------

    def write_pending(self, datum: DatumId) -> bool:
        """True when at least one write is queued on ``datum``."""
        return bool(self._pending.get(datum))

    def begin_write(self, datum: DatumId, writer: HostId, now: float) -> PendingWrite:
        """Queue a write and compute whose approval it needs.

        The requester's own approval is implicit (it rides on the write
        request, §3.1), so only *other* live holders are awaited.  Holders
        with already-expired leases are ignored.
        """
        self._prune(datum, now)
        awaiting = self.live_holders(datum, now) - {writer}
        expiries = {
            holder: self._by_datum[datum][holder].expires_at for holder in awaiting
        }
        write = PendingWrite(
            datum=datum,
            writer=writer,
            write_id=self._next_write_id,
            awaiting=awaiting,
            expiries=expiries,
        )
        self._next_write_id += 1
        self._pending.setdefault(datum, deque()).append(write)
        return write

    def head_write(self, datum: DatumId) -> PendingWrite | None:
        """The write currently collecting approvals (writes serialize)."""
        queue = self._pending.get(datum)
        return queue[0] if queue else None

    def approve(self, datum: DatumId, holder: HostId, write_id: int) -> PendingWrite | None:
        """Record a holder's approval.

        An approving holder also invalidates its cached copy (client side),
        but its *lease* remains in force; subsequent writes must ask again.

        Returns:
            The pending write if the approval matched it, else None (stale
            or duplicate approvals are ignored).
        """
        write = self.head_write(datum)
        if write is None or write.write_id != write_id:
            return None
        write.awaiting.discard(holder)
        return write

    def finish_write(self, datum: DatumId, write_id: int) -> None:
        """Remove a committed (or aborted) write from the queue."""
        queue = self._pending.get(datum)
        if not queue:
            return
        if queue[0].write_id != write_id:
            raise LeaseDeniedError(
                f"finish_write out of order on {datum}: head={queue[0].write_id}, got={write_id}"
            )
        queue.popleft()
        if not queue:
            del self._pending[datum]

    # -- maintenance -----------------------------------------------------------

    def expire_sweep(self, now: float) -> int:
        """Reclaim expired lease records; returns how many were removed.

        Short terms keep this table small (§2): expired records are garbage.
        """
        removed = 0
        for datum in list(self._by_datum):
            removed += self._prune(datum, now)
        return removed

    def clear(self) -> float:
        """Forget everything — models the server's volatile state on crash.

        Returns:
            The pre-crash :attr:`max_term_granted`.  A restarting server
            needs exactly this value as its write-delay bound (paper §2's
            crash rule) even though every lease record is gone, so the
            only way to drop the table is to be handed the bound —
            restart paths cannot lose it silently.
        """
        bound = self.max_term_granted
        self._by_datum.clear()
        self._by_holder.clear()
        self._pending.clear()
        self._min_expiry.clear()
        self.max_term_granted = 0.0
        return bound

    # -- internals ----------------------------------------------------------------

    def _prune(self, datum: DatumId, now: float) -> int:
        min_expiry = self._min_expiry.get(datum)
        if min_expiry is not None and now < min_expiry:
            return 0  # no lease can have expired: pruning would be a no-op
        holders = self._by_datum.get(datum)
        if not holders:
            return 0
        dead = [h for h, lease in holders.items() if now >= lease.expires_at]
        obs = self.obs
        for holder in dead:
            del holders[holder]
            if obs.active:
                obs.emit(
                    LEASE_EXPIRE, now, self.owner, datum=str(datum), holder=holder
                )
            held = self._by_holder.get(holder)
            if held:
                held.discard(datum)
                if not held:
                    del self._by_holder[holder]
        if not holders:
            del self._by_datum[datum]
            self._min_expiry.pop(datum, None)
        else:
            self._min_expiry[datum] = min(
                lease.expires_at for lease in holders.values()
            )
        return len(dead)

    def _on_holder_gone(self, datum: DatumId, holder: HostId) -> None:
        """A released lease no longer blocks any pending write.

        Every *queued* write snapshots its awaited holders at
        ``begin_write``, so the release must be swept through the whole
        queue, not just the head — otherwise a write that reaches the
        head after the release keeps waiting for the vanished lease's
        original expiry (found by the stateful property tests: grant,
        queue two writes, release, commit the first — the second write
        reported not-ready with no live holder left).
        """
        for write in self._pending.get(datum, ()):
            write.awaiting.discard(holder)
