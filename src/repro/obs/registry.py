"""Counters, histograms and timing hooks.

Where the :class:`~repro.obs.bus.TraceBus` answers "what happened, in
order", the :class:`Registry` answers "how much, how fast": monotonically
increasing counters and bounded-memory histograms, named hierarchically
(``"server.commit_latency"``), with a JSON Lines export so benchmark and
experiment runs leave a machine-readable artifact.

Timing hooks: :meth:`Registry.span` wraps a code block and
:meth:`Registry.timed` wraps a function, both recording wall-clock
durations into a histogram.  When the registry is disabled both reduce to
a shared no-op context manager / a single branch, so hot paths can stay
instrumented permanently.
"""

from __future__ import annotations

import functools
import json
import time
from typing import Callable, TextIO


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A bounded-memory distribution summary.

    Tracks exact count/sum/min/max and keeps a bounded sample window (the
    most recent ``sample_cap`` observations) for percentile estimates —
    enough fidelity for benchmark trajectories without unbounded growth.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_cap", "_next")

    def __init__(self, name: str, sample_cap: int = 4096):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._cap = sample_cap
        self._next = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < self._cap:
            self._samples.append(value)
        else:  # ring overwrite: keep the most recent window
            self._samples[self._next] = value
            self._next = (self._next + 1) % self._cap


    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained sample window."""
        if not self._samples:
            raise ValueError(f"histogram {self.name} is empty")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction out of range: {fraction}")
        ordered = sorted(self._samples)
        rank = max(1, round(fraction * len(ordered)))
        return ordered[rank - 1]

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.6g})"


class _NullSpan:
    """Context manager that does nothing (disabled-registry fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager timing one block into a histogram."""

    __slots__ = ("_hist", "_start")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter() - self._start)
        return None


class Registry:
    """A named collection of counters and histograms.

    Attributes:
        enabled: when False, :meth:`span` and :meth:`timed` are no-ops;
            direct counter/histogram handles keep working (callers who
            fetched them pay for what they use).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- handles ---------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Fetch (creating on first use) the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        """Fetch (creating on first use) the histogram called ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name)
        return hist

    def inc(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n`` (no-op when disabled)."""
        if self.enabled:
            self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name`` (no-op when disabled)."""
        if self.enabled:
            self.histogram(name).observe(value)

    # -- timing hooks ----------------------------------------------------------

    def span(self, name: str) -> _Span | _NullSpan:
        """Time a ``with`` block into histogram ``name``.

        Disabled registries return a shared no-op span, so the call costs
        one branch and no allocation.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self.histogram(name))

    def timed(self, name: str) -> Callable:
        """Decorator timing each call of the wrapped function.

        The enabled check happens per call, so a registry may be toggled
        after decoration.
        """

        def decorate(fn: Callable) -> Callable:
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                if not self.enabled:
                    return fn(*args, **kwargs)
                start = time.perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    self.histogram(name).observe(time.perf_counter() - start)

            return wrapper

        return decorate

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """All metrics as plain data (counters: int; histograms: summary)."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "mean": h.mean,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def export_jsonl(self, dest: str | TextIO) -> int:
        """Write one JSON line per metric; returns the line count."""
        if isinstance(dest, (str, bytes)):
            with open(dest, "w", encoding="utf-8") as fh:
                return self.export_jsonl(fh)
        count = 0
        for name, counter in sorted(self._counters.items()):
            dest.write(
                json.dumps({"metric": name, "kind": "counter", "value": counter.value})
                + "\n"
            )
            count += 1
        for name, hist in sorted(self._histograms.items()):
            record = {
                "metric": name,
                "kind": "histogram",
                "count": hist.count,
                "sum": hist.total,
                "mean": hist.mean,
            }
            if hist.count:
                record["min"] = hist.min
                record["max"] = hist.max
            dest.write(json.dumps(record) + "\n")
            count += 1
        return count

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Registry({state}, counters={len(self._counters)}, "
            f"histograms={len(self._histograms)})"
        )
