"""Typed protocol-event taxonomy.

Every instrumented subsystem emits events onto a :class:`~repro.obs.bus.
TraceBus` using the type constants below.  An event is a flat dict with
three standard fields — ``type`` (one of these constants), ``ts`` (the
emitting host's local time: virtual seconds in the simulator, wall-clock
seconds in the asyncio runtime) and ``host`` (the emitting host id, or
None for hostless components) — plus the type-specific payload fields
listed in :data:`SCHEMA`.

The schemas are runtime-independent by construction: the sans-io engines
emit most of the protocol events themselves, so a simulated run and an
asyncio run of the same scenario produce streams with identical shapes
(only ``ts`` semantics differ).  ``tests/obs/test_parity.py`` holds this
invariant.
"""

from __future__ import annotations

# -- lease lifecycle (LeaseTable) ------------------------------------------------
LEASE_GRANT = "lease.grant"
LEASE_RENEW = "lease.renew"
LEASE_EXPIRE = "lease.expire"
LEASE_RELEASE = "lease.release"

# -- write path (ServerEngine) ---------------------------------------------------
APPROVAL_REQUEST = "write.approval_request"
APPROVAL_REPLY = "write.approval_reply"
WRITE_DEFER = "write.defer"
WRITE_COMMIT = "write.commit"
WRITE_CAS_REJECT = "write.cas_reject"

# -- crash recovery (ServerEngine) -----------------------------------------------
RECOVERY_BEGIN = "recovery.begin"
RECOVERY_HOLD = "recovery.hold"
RECOVERY_END = "recovery.end"

# -- client RPC layer (ClientEngine) ---------------------------------------------
RETRANSMIT = "rpc.retransmit"
RPC_FAIL = "rpc.fail"
LOCAL_HIT = "read.local_hit"

# -- drivers (sim timer bank / asyncio node) -------------------------------------
TIMER_FIRE = "timer.fire"

# -- message fabric (sim Network / asyncio node) ---------------------------------
NET_SEND = "net.send"
NET_RECV = "net.recv"
NET_DROP = "net.drop"
NET_DUP = "net.dup"

# -- real-transport connection lifecycle (repro.runtime.tcp) ----------------------
CONN_UP = "conn.up"
CONN_DOWN = "conn.down"
CONN_RETRY = "conn.retry"

# -- real-transport frame loss (repro.runtime) ------------------------------------
TRANSPORT_DROP = "transport.drop"

# -- shard routing (repro.shard) ---------------------------------------------------
SHARD_ROUTE = "shard.route"
SHARD_MISS = "shard.miss"

# -- replicated lease authority (repro.replica) ------------------------------------
REPLICA_ELECTED = "replica.elected"
REPLICA_SERVE = "replica.serve"
REPLICA_DEPOSED = "replica.deposed"
REPLICA_REDIRECT = "replica.redirect"

# -- simulation kernel -----------------------------------------------------------
KERNEL_COMPACT = "kernel.compact"

# -- consistency oracle ----------------------------------------------------------
ORACLE_VIOLATION = "oracle.violation"

# -- scenario exploration (repro.check) --------------------------------------------
CHECK_RUN = "check.run"
CHECK_SHRINK = "check.shrink"

# -- parallel sweep executor (repro.parallel) --------------------------------------
POOL_START = "parallel.pool_start"
POOL_DONE = "parallel.pool_done"
WORKER_SPAWN = "parallel.worker_spawn"
WORKER_EXIT = "parallel.worker_exit"
WORKER_CRASH = "parallel.worker_crash"
CHUNK_DONE = "parallel.chunk_done"

#: Payload fields (beyond ``type``/``ts``/``host``) of each event type.
#: The parity and schema tests enforce that every emission site matches.
SCHEMA: dict[str, tuple[str, ...]] = {
    LEASE_GRANT: ("datum", "holder", "term"),
    LEASE_RENEW: ("datum", "holder", "term"),
    LEASE_EXPIRE: ("datum", "holder"),
    LEASE_RELEASE: ("datum", "holder"),
    APPROVAL_REQUEST: ("datum", "write_id", "awaiting"),
    APPROVAL_REPLY: ("datum", "write_id", "holder"),
    WRITE_DEFER: ("datum", "src", "reason"),
    WRITE_COMMIT: ("datum", "writer", "version"),
    WRITE_CAS_REJECT: ("datum", "writer", "expected", "found"),
    RECOVERY_BEGIN: ("until",),
    RECOVERY_HOLD: ("src", "write_seq"),
    RECOVERY_END: ("queued",),
    RETRANSMIT: ("req_id", "retries"),
    RPC_FAIL: ("req_id", "retries"),
    LOCAL_HIT: ("datum",),
    TIMER_FIRE: ("key",),
    NET_SEND: ("src", "dst", "kind"),
    NET_RECV: ("src", "dst", "kind"),
    NET_DROP: ("src", "dst", "kind", "reason"),
    NET_DUP: ("src", "dst", "kind"),
    CONN_UP: ("peer", "attempt"),
    CONN_DOWN: ("peer", "reason"),
    CONN_RETRY: ("peer", "attempt", "delay"),
    TRANSPORT_DROP: ("dst", "kind", "reason"),
    SHARD_ROUTE: ("datum", "shard", "kind"),
    SHARD_MISS: ("src", "kind"),
    REPLICA_ELECTED: ("ballot", "serve_at"),
    REPLICA_SERVE: ("ballot", "queued"),
    REPLICA_DEPOSED: ("ballot", "reason"),
    REPLICA_REDIRECT: ("src", "master"),
    KERNEL_COMPACT: ("removed", "live"),
    ORACLE_VIOLATION: ("datum", "client", "version"),
    CHECK_RUN: ("scenario", "seed", "verdict"),
    CHECK_SHRINK: ("scenario", "before", "after"),
    POOL_START: ("workers", "jobs", "chunks"),
    POOL_DONE: ("jobs", "crashes", "requeues"),
    WORKER_SPAWN: ("worker",),
    WORKER_EXIT: ("worker",),
    WORKER_CRASH: ("worker", "chunk", "requeued"),
    CHUNK_DONE: ("chunk", "worker", "jobs"),
}

#: Every known event type, in taxonomy order.
EVENT_TYPES: tuple[str, ...] = tuple(SCHEMA)


def validate(event: dict) -> None:
    """Check one emitted event against :data:`SCHEMA`.

    Raises:
        ValueError: unknown type, missing standard fields, or a payload
            that does not match the declared schema exactly.
    """
    etype = event.get("type")
    if etype not in SCHEMA:
        raise ValueError(f"unknown event type {etype!r}")
    missing = {"type", "ts", "host"} - event.keys()
    if missing:
        raise ValueError(f"{etype} event missing standard fields {sorted(missing)}")
    payload = event.keys() - {"type", "ts", "host"}
    expected = set(SCHEMA[etype])
    if payload != expected:
        raise ValueError(
            f"{etype} payload mismatch: got {sorted(payload)}, want {sorted(expected)}"
        )
