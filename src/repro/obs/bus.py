"""The process-local trace bus.

A :class:`TraceBus` is the spine of the observability layer: every
instrumented subsystem (kernel, network, lease table, protocol engines,
runtime nodes, oracle) emits typed events onto one bus, and consumers —
a bounded in-memory buffer, ad-hoc subscribers, a metrics adapter —
observe the same stream regardless of whether the system is running
under the simulator or the asyncio runtime.

Cost discipline: observability must be free when nobody is watching.
Emission sites guard with ``bus.active`` (a plain attribute) before
building the event payload, and the conventional way to disable tracing
entirely is to pass ``obs=None`` so the hot paths reduce to a single
``None`` check.  :data:`NULL_BUS` is a shared, permanently inactive bus
for components that prefer attribute access over ``None`` handling.
"""

from __future__ import annotations

import io
import json
from collections import Counter, deque
from typing import Callable, Iterable, TextIO

#: A subscriber receives each event dict as it is emitted.
Subscriber = Callable[[dict], None]


class TraceBus:
    """Pub/sub event stream with a bounded replay buffer.

    Attributes:
        active: master switch checked by every emission site; flip it with
            :meth:`enable`/:meth:`disable` (or assign directly).
        dropped: events discarded because the buffer was full (oldest-first
            eviction); subscribers still saw them.
    """

    __slots__ = ("active", "dropped", "_buffer", "_subscribers", "_counts")

    def __init__(self, capacity: int | None = 65536, active: bool = True):
        """Args:
            capacity: replay-buffer size; None keeps every event (tests).
            active: initial switch state.
        """
        self.active = active
        self.dropped = 0
        self._buffer: deque[dict] = deque(maxlen=capacity)
        self._subscribers: list[Subscriber] = []
        self._counts: Counter = Counter()  # per-type tally of _buffer

    # -- control ---------------------------------------------------------------

    def enable(self) -> None:
        """Start recording and dispatching events."""
        self.active = True

    def disable(self) -> None:
        """Stop recording; emission sites become near-free."""
        self.active = False

    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Register ``fn`` to receive every event; returns it for unsubscribe."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Remove a subscriber (no-op when not registered)."""
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    # -- emission --------------------------------------------------------------

    def emit(self, type: str, ts: float, host: str | None = None, **fields) -> None:
        """Record one event.

        No-op while :attr:`active` is False — but prefer checking
        ``bus.active`` at the call site so the payload is never built.
        """
        if not self.active:
            return
        event = {"type": type, "ts": ts, "host": host}
        if fields:
            event.update(fields)
        buffer = self._buffer
        maxlen = buffer.maxlen
        counts = self._counts
        if maxlen is not None and len(buffer) == maxlen:
            self.dropped += 1
            if maxlen:  # evict manually so the per-type tally stays exact
                evicted = buffer.popleft()
                t = evicted["type"]
                counts[t] -= 1
                if not counts[t]:
                    del counts[t]
                buffer.append(event)
                counts[type] += 1
            # maxlen == 0 (NULL_BUS): nothing is ever buffered or counted
        else:
            buffer.append(event)
            counts[type] += 1
        for fn in self._subscribers:
            fn(event)

    # -- consumption -----------------------------------------------------------

    def events(self, type: str | None = None) -> list[dict]:
        """Buffered events, optionally filtered to one type."""
        if type is None:
            return list(self._buffer)
        return [e for e in self._buffer if e["type"] == type]

    def counts(self) -> Counter:
        """Buffered event count per type.  O(#types), not O(#events).

        The tally is maintained incrementally on emit and eviction; this
        returns a copy so callers may mutate the result freely.
        """
        return Counter(self._counts)

    def clear(self) -> None:
        """Drop the buffered events (subscribers are unaffected)."""
        self._buffer.clear()
        self._counts.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def __bool__(self) -> bool:
        """Always truthy — ``__len__`` would otherwise make an *empty* bus
        falsy, and ``obs or NULL_BUS`` at wiring sites would silently
        replace a freshly created (still empty) bus with the null one.
        Test emptiness with ``len(bus)``."""
        return True

    # -- export ----------------------------------------------------------------

    def export_jsonl(self, dest: str | TextIO) -> int:
        """Write buffered events as JSON Lines; returns the count written.

        Args:
            dest: a path or an open text file object.
        """
        if isinstance(dest, (str, bytes)):
            with open(dest, "w", encoding="utf-8") as fh:
                return self.export_jsonl(fh)
        count = 0
        for event in self._buffer:
            dest.write(json.dumps(event, sort_keys=True) + "\n")
            count += 1
        return count

    def to_jsonl(self) -> str:
        """The buffered events as one JSON Lines string."""
        out = io.StringIO()
        self.export_jsonl(out)
        return out.getvalue()

    def __repr__(self) -> str:
        state = "active" if self.active else "inactive"
        return f"TraceBus({state}, buffered={len(self._buffer)}, dropped={self.dropped})"


def read_jsonl(source: str | TextIO | Iterable[str]) -> list[dict]:
    """Load events previously written by :meth:`TraceBus.export_jsonl`.

    Args:
        source: a path, an open text file, or an iterable of JSON lines.
    """
    if isinstance(source, (str, bytes)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_jsonl(fh)
    return [json.loads(line) for line in source if line.strip()]


#: Shared, permanently inactive bus: emission sites holding this instead of
#: None pay one attribute load on the disabled path.
NULL_BUS = TraceBus(capacity=0, active=False)
