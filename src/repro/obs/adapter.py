"""Adapters from the raw event stream to metrics and plots.

The experiments harness and the consistency oracle consume the
:class:`~repro.obs.bus.TraceBus` stream through this module: events can
be folded into a :class:`~repro.obs.registry.Registry` live (subscriber),
or post-processed into bucketed time series shaped for
:func:`repro.experiments.plot.ascii_plot`.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.obs.bus import TraceBus
from repro.obs.registry import Registry


def attach_registry(bus: TraceBus, registry: Registry, prefix: str = "events") -> object:
    """Fold every bus event into per-type registry counters, live.

    Each event of type ``t`` increments counter ``"<prefix>.<t>"``.

    Returns:
        The subscriber handle; pass it to ``bus.unsubscribe`` to detach.
    """

    def fold(event: dict) -> None:
        registry.inc(f"{prefix}.{event['type']}")

    return bus.subscribe(fold)


def counts_by_type(events: Iterable[dict]) -> Counter:
    """Event count per type over an event collection."""
    return Counter(e["type"] for e in events)


def events_of_host(events: Iterable[dict], host: str) -> list[dict]:
    """Events attributed to one host."""
    return [e for e in events if e.get("host") == host]


def server_message_load(
    events: Iterable[dict],
    host: str = "server",
    kinds: Sequence[str] | None = None,
    kind_prefix: str | None = None,
) -> int:
    """Messages handled (sent plus received) by ``host`` per the net events.

    This is the paper's server *consistency load* metric computed from the
    trace stream instead of the network's own counters; with ``kinds`` set
    to the experiment harness's consistency kinds the two agree exactly
    (asserted in ``tests/obs/test_adapter.py``).

    Args:
        kinds: exact message kinds to count (None counts all).
        kind_prefix: alternatively, count kinds sharing a prefix.
    """
    kindset = set(kinds) if kinds is not None else None
    total = 0
    for event in events:
        etype = event["type"]
        if etype == "net.send":
            involved = event["src"] == host
        elif etype == "net.recv":
            involved = event["dst"] == host
        else:
            continue
        if not involved:
            continue
        kind = event["kind"]
        if kindset is not None and kind not in kindset:
            continue
        if kind_prefix is not None and not kind.startswith(kind_prefix):
            continue
        total += 1
    return total


def bucket_series(
    events: Iterable[dict],
    bucket: float,
    types: Sequence[str] | None = None,
    t_end: float | None = None,
) -> tuple[list[float], dict[str, list[float]]]:
    """Bucket events into per-type count series for plotting.

    Args:
        events: the stream (only ``ts`` and ``type`` are consulted).
        bucket: bucket width in seconds (must be positive).
        types: restrict the series to these types (default: all seen).
        t_end: extend the x axis to at least this time.

    Returns:
        ``(xs, series)`` where ``xs`` holds each bucket's start time and
        ``series`` maps event type to per-bucket counts — directly
        consumable by :func:`repro.experiments.plot.ascii_plot`.
    """
    if bucket <= 0:
        raise ValueError(f"bucket must be positive: {bucket}")
    wanted = set(types) if types is not None else None
    per_type: dict[str, Counter] = {}
    last_bucket = -1
    for event in events:
        etype = event["type"]
        if wanted is not None and etype not in wanted:
            continue
        index = int(event["ts"] / bucket)
        per_type.setdefault(etype, Counter())[index] += 1
        if index > last_bucket:
            last_bucket = index
    if t_end is not None:
        last_bucket = max(last_bucket, int(t_end / bucket))
    if wanted is not None:
        for etype in wanted:
            per_type.setdefault(etype, Counter())
    n = last_bucket + 1
    xs = [i * bucket for i in range(n)]
    series = {
        etype: [float(buckets[i]) for i in range(n)]
        for etype, buckets in sorted(per_type.items())
    }
    return xs, series
