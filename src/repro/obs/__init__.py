"""Unified observability layer: trace events, metrics, timing.

The paper's claims are quantitative — server consistency load, lease-added
delay, storage cost versus term — so the reproduction needs its own
nervous system.  This package provides it, dependency-free:

* :mod:`repro.obs.events` — the typed protocol-event taxonomy (grants,
  renewals, expiries, approvals, write deferrals, recovery holds,
  retransmissions, timer fires, network sends/drops) and its schemas.
* :mod:`repro.obs.bus` — :class:`TraceBus`, a process-local pub/sub event
  stream with a bounded replay buffer and JSON Lines export.
* :mod:`repro.obs.registry` — :class:`Registry` of counters/histograms
  with ``span``/``timed`` hooks for hot paths, also JSONL-exportable.
* :mod:`repro.obs.adapter` — folds the event stream into registries and
  into plot-ready time series for the experiments harness.

Both runtimes speak it: the simulator (kernel, network, drivers) and the
asyncio nodes thread one bus through the shared sans-io engines, so a
simulated run and a real run of the same scenario yield event streams
with identical schemas.  Everything is disabled-by-default and
no-op-cheap when off: instrumentation sites guard on ``bus.active`` (or a
``None`` bus) before building any payload.
"""

from repro.obs import events
from repro.obs.adapter import (
    attach_registry,
    bucket_series,
    counts_by_type,
    events_of_host,
    server_message_load,
)
from repro.obs.bus import NULL_BUS, TraceBus, read_jsonl
from repro.obs.registry import Counter, Histogram, Registry

__all__ = [
    "TraceBus",
    "NULL_BUS",
    "read_jsonl",
    "Registry",
    "Counter",
    "Histogram",
    "events",
    "attach_registry",
    "counts_by_type",
    "events_of_host",
    "server_message_load",
    "bucket_series",
]
