"""Client-side request pipeline: coalesce outbound requests into batches.

The paper's §3.1 batches lease *extensions* to amortize the round trip;
this module generalizes that to every request a client sends, in the
style of the memproxy client pipeline.  The engine routes each outbound
request here instead of emitting a ``Send`` directly; the pipeline
buffers it and the engine arms a zero-delay flush timer.  Both executors
already give that timer the semantics we need:

* the simulator's kernel orders events by ``(time, seq)``, so a
  zero-delay timer fires after every other event at the same instant;
* asyncio's ``call_later(0)`` fires on the next loop iteration, after
  every task step scheduled in the current one.

Either way, all requests issued "at the same time" leave in one
:class:`~repro.protocol.messages.BatchRequest` frame — no driver
changes, and with batching disabled behaviour is bit-for-bit identical.

Retransmissions flow through the pipeline too: each inner op keeps its
own ``req_id`` and retry timer, so a lost *batch* is recovered op by op
(the retransmitted ops coalesce into a fresh batch on the next tick).
"""

from __future__ import annotations

from typing import Callable

from repro.protocol.messages import (
    ApprovalReply,
    BatchRequest,
    ExtendRequest,
    Message,
    NamespaceRequest,
    ReadRequest,
    RelinquishRequest,
    WriteRequest,
)

#: Engine timer key that flushes the pipeline.
FLUSH_TIMER = "pipeline.flush"

#: Everything a client sends is batchable; server-bound pushes that some
#: subclass might emit stay unbatched by default.
_BATCHABLE = (
    ReadRequest,
    ExtendRequest,
    WriteRequest,
    NamespaceRequest,
    RelinquishRequest,
    ApprovalReply,
)


class BatchPipeline:
    """Buffers one client's outbound requests for the current instant.

    The engine owns exactly one pipeline and drives it from two points:
    :meth:`add` on every outbound request (arming the flush timer when
    the buffer transitions empty -> non-empty), and :meth:`flush` when
    that timer fires.
    """

    def __init__(self, next_id: Callable[[], int], max_batch: int = 64):
        """Args:
            next_id: allocator for batch ids (the engine's req-id counter,
                so batch ids never collide with inner op ids).
            max_batch: most ops per frame; a longer buffer is split into
                consecutive full frames.
        """
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        self._next_id = next_id
        self.max_batch = max_batch
        self._buffer: list[Message] = []
        self.batches_sent = 0
        self.ops_batched = 0

    @staticmethod
    def wants(msg: Message) -> bool:
        """Is this message eligible for batching?"""
        return isinstance(msg, _BATCHABLE)

    def __len__(self) -> int:
        return len(self._buffer)

    def add(self, msg: Message) -> bool:
        """Buffer one outbound message.

        Returns True when the flush timer must be armed (first message of
        the instant); later adds ride the already-armed timer.
        """
        self._buffer.append(msg)
        return len(self._buffer) == 1

    def flush(self) -> list[Message]:
        """Drain the buffer into the frames to send, in arrival order.

        A lone message is sent unwrapped — byte-identical to the
        unbatched protocol — so batching only changes the wire format
        when it actually saves frames.
        """
        msgs, self._buffer = self._buffer, []
        out: list[Message] = []
        for i in range(0, len(msgs), self.max_batch):
            chunk = msgs[i : i + self.max_batch]
            if len(chunk) == 1:
                out.append(chunk[0])
            else:
                out.append(BatchRequest(self._next_id(), tuple(chunk)))
                self.batches_sent += 1
                self.ops_batched += len(chunk)
        return out
