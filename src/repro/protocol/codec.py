"""Wire codec: protocol messages to/from JSON-safe dictionaries.

Used by the TCP transport of the asyncio runtime.  The format is
deliberately simple: ``{"type": <class name>, ...fields}`` with

* ``DatumId`` encoded as ``[kind, ident]``,
* ``bytes`` encoded as base64 strings (marked by field name),
* ``inf`` terms encoded as the string ``"inf"``,
* nested ``ExtendGrant`` records encoded recursively,
* nested messages (batch members) tagged ``__msg__``; batches never nest,
  and decode enforces that so a hostile frame cannot recurse unboundedly.
"""

from __future__ import annotations

import base64
import dataclasses
import math
from typing import Any

from repro.errors import ProtocolError
from repro.protocol.messages import (
    ApprovalReply,
    ApprovalRequest,
    BatchReply,
    BatchRequest,
    ExtendGrant,
    ExtendReply,
    ExtendRequest,
    FlushRequest,
    InstalledAnnounce,
    Message,
    NamespaceReply,
    NamespaceRequest,
    NotMaster,
    PrepareReply,
    PrepareRequest,
    ProposeReply,
    ProposeRequest,
    ReadReply,
    ReadRequest,
    RecallReply,
    RecallRequest,
    RelinquishRequest,
    WriteLeaseReply,
    WriteLeaseRequest,
    WriteReply,
    WriteRequest,
)
from repro.types import DatumId, DatumKind

_MESSAGE_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        ReadRequest,
        ReadReply,
        ExtendRequest,
        ExtendReply,
        WriteRequest,
        WriteReply,
        ApprovalRequest,
        ApprovalReply,
        NamespaceRequest,
        NamespaceReply,
        InstalledAnnounce,
        RelinquishRequest,
        WriteLeaseRequest,
        WriteLeaseReply,
        RecallRequest,
        RecallReply,
        FlushRequest,
        PrepareRequest,
        PrepareReply,
        ProposeRequest,
        ProposeReply,
        NotMaster,
        BatchRequest,
        BatchReply,
    )
}

#: Wire field names per class — real dataclass fields only (``kind`` is a
#: ClassVar pseudo-field and must never hit the wire), precomputed so the
#: encode path does no per-message reflection.
_FIELDS_BY_TYPE: dict[str, tuple[str, ...]] = {
    name: tuple(f.name for f in dataclasses.fields(cls))
    for name, cls in _MESSAGE_TYPES.items()
}

#: Fields added to the wire format after v1, omitted when at their default
#: so that frames from a new peer stay byte-identical to — and decodable
#: by — an unbatched (pre-pipeline) peer.  Maps class name -> {field:
#: default}.
_OPTIONAL_FIELDS: dict[str, dict[str, Any]] = {
    "WriteRequest": {"cas": None},
}


def _encode_value(value: Any) -> Any:
    # Scalars first: most wire fields are ints, strings, None or bools,
    # and exact-type checks keep them off the isinstance chain below.
    # Anything these miss (e.g. an int or float subclass) falls through
    # to the original chain, so dispatch is unchanged — only faster.
    tp = type(value)
    if value is None or tp is str or tp is int or tp is bool:
        return value
    if tp is float:
        return {"__float__": "inf"} if math.isinf(value) else value
    if tp is bytes:
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, Message):
        return {"__msg__": encode_message(value)}
    if isinstance(value, DatumId):
        return {"__datum__": [value.kind.value, value.ident]}
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, float) and math.isinf(value):
        return {"__float__": "inf"}
    if isinstance(value, ExtendGrant):
        return {
            "__grant__": {
                "datum": _encode_value(value.datum),
                "term": _encode_value(value.term),
                "version": value.version,
                "payload": _encode_value(value.payload),
                "changed": value.changed,
                "cover": value.cover,
            }
        }
    if isinstance(value, (tuple, list)):
        return [_encode_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)):
        return value
    raise ProtocolError(f"cannot encode {type(value).__name__}: {value!r}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "__datum__" in value:
            kind, ident = value["__datum__"]
            return DatumId(DatumKind(kind), ident)
        if "__bytes__" in value:
            return base64.b64decode(value["__bytes__"])
        if "__float__" in value:
            return math.inf
        if "__msg__" in value:
            return decode_message(value["__msg__"])
        if "__grant__" in value:
            g = value["__grant__"]
            return ExtendGrant(
                datum=_decode_value(g["datum"]),
                term=_decode_value(g["term"]),
                version=g["version"],
                payload=_decode_value(g["payload"]),
                changed=g["changed"],
                cover=g.get("cover"),
            )
        raise ProtocolError(f"unknown tagged value: {value!r}")
    if isinstance(value, list):
        return tuple(_decode_value(v) for v in value)
    return value


def encode_message(msg: Message) -> dict:
    """Encode a protocol message as a JSON-safe dict."""
    name = type(msg).__name__
    fields = _FIELDS_BY_TYPE.get(name)
    if fields is None:
        raise ProtocolError(f"not a wire message: {name}")
    out: dict[str, Any] = {"type": name}
    optional = _OPTIONAL_FIELDS.get(name)
    if optional is None:
        for field in fields:
            out[field] = _encode_value(getattr(msg, field))
    else:
        for field in fields:
            value = getattr(msg, field)
            if field in optional and value == optional[field]:
                continue
            out[field] = _encode_value(value)
    return out


def decode_message(data: dict) -> Message:
    """Decode a dict produced by :func:`encode_message`.

    Raises:
        ProtocolError: unknown type or malformed fields.
    """
    try:
        cls = _MESSAGE_TYPES[data["type"]]
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"unknown message type in {data!r}") from exc
    try:
        kwargs = {k: _decode_value(v) for k, v in data.items() if k != "type"}
        msg = cls(**kwargs)
    except (TypeError, ValueError, KeyError, RecursionError) as exc:
        raise ProtocolError(f"malformed {data.get('type')}: {exc}") from exc
    if isinstance(msg, (BatchRequest, BatchReply)):
        inner = msg.ops if isinstance(msg, BatchRequest) else msg.replies
        for op in inner:
            if not isinstance(op, Message) or isinstance(
                op, (BatchRequest, BatchReply)
            ):
                raise ProtocolError(f"invalid batch member: {op!r}")
    return msg
