"""Sans-io protocol engines.

The lease protocol is implemented as two pure state machines —
:class:`~repro.protocol.server.ServerEngine` and
:class:`~repro.protocol.client.ClientEngine` — that consume messages and
timer firings (each stamped with the host's *local* clock reading) and emit
:mod:`effects <repro.protocol.effects>`: sends, timer arms, and operation
completions.  Neither engine performs I/O or reads a clock, so the exact
same protocol code is driven by the discrete-event simulator
(:mod:`repro.sim.driver`) and by the real-time asyncio runtime
(:mod:`repro.runtime`).

Wire format for the TCP transport lives in :mod:`repro.protocol.codec`.
"""

from repro.protocol.client import ClientConfig, ClientEngine
from repro.protocol.effects import (
    Broadcast,
    CancelTimer,
    Complete,
    Effect,
    Send,
    SetTimer,
)
from repro.protocol.messages import (
    ApprovalReply,
    ApprovalRequest,
    ExtendReply,
    ExtendRequest,
    InstalledAnnounce,
    Message,
    ReadReply,
    ReadRequest,
    WriteReply,
    WriteRequest,
)
from repro.protocol.server import ServerConfig, ServerEngine

__all__ = [
    "Message",
    "ReadRequest",
    "ReadReply",
    "ExtendRequest",
    "ExtendReply",
    "WriteRequest",
    "WriteReply",
    "ApprovalRequest",
    "ApprovalReply",
    "InstalledAnnounce",
    "Effect",
    "Send",
    "Broadcast",
    "SetTimer",
    "CancelTimer",
    "Complete",
    "ServerEngine",
    "ServerConfig",
    "ClientEngine",
    "ClientConfig",
]
