"""Effects emitted by the sans-io engines.

A driver (simulator or asyncio runtime) executes each effect:

* :class:`Send` / :class:`Broadcast` — transmit a message.  A broadcast is
  delivered to an explicit recipient list; drivers with a multicast
  facility pay one send-side processing cost, drivers without one fan out
  unicasts (the paper's footnote 6 cost difference).
* :class:`SetTimer` / :class:`CancelTimer` — arm or disarm a named timer;
  the engine will receive ``handle_timer(key, now)`` when it fires.
* :class:`Complete` — an application-visible operation finished; carries
  the result to whoever invoked the client API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.protocol.messages import Message
from repro.types import HostId


@dataclass(frozen=True)
class Send:
    """Transmit ``message`` to ``dst``."""

    dst: HostId
    message: Message


@dataclass(frozen=True)
class Broadcast:
    """Transmit ``message`` to every host in ``dsts`` (multicast if available)."""

    dsts: tuple[HostId, ...]
    message: Message


@dataclass(frozen=True)
class SetTimer:
    """Arm timer ``key`` to fire ``delay`` seconds from now.

    Re-arming an existing key replaces the previous deadline.
    """

    key: str
    delay: float


@dataclass(frozen=True)
class CancelTimer:
    """Disarm timer ``key`` (no-op when not armed)."""

    key: str


@dataclass(frozen=True)
class Complete:
    """An application operation finished.

    Attributes:
        op_id: the id returned when the operation was submitted.
        ok: True on success.
        value: operation result — (version, payload) for reads, the new
            version for writes.
        error: error string when ``ok`` is False.
    """

    op_id: int
    ok: bool
    value: Any = None
    error: str | None = None


#: Union type of everything an engine can emit.
Effect = Send | Broadcast | SetTimer | CancelTimer | Complete
