"""The client-side protocol engine (sans-io).

A cache using leases requires a *valid lease* on the datum (in addition to
holding the datum) before serving a read locally (paper §2).  This engine
implements the client half of the protocol:

* local read hits complete with **zero** messages while the lease is valid;
* expired leases are extended with a **batched** request covering every
  lease the cache still holds (§3.1), which amortizes the round trip;
* writes are written through with per-client sequence numbers for
  exactly-once commit under retransmission;
* approval callbacks invalidate the local copy (with a version floor) and
  reply immediately — the client never blocks an approval, so there is no
  distributed deadlock;
* installed-file cover leases are refreshed by unsolicited multicast
  announcements;
* optional anticipatory extension renews leases shortly before expiry (§4),
  trading server load for read latency;
* temporary files live in a client-local store and never touch the server
  (the V design that makes write-through affordable).

Lease expiry is tracked conservatively with
:func:`repro.clock.sync.safe_local_expiry`, anchored at the *send* time of
the request that produced the lease.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable

from repro.cache.eviction import make_policy
from repro.cache.filecache import FileCache, TempFileStore
from repro.clock.sync import safe_local_expiry
from repro.errors import ReproError
from repro.lease.holder import LeaseSet
from repro.obs.bus import NULL_BUS
from repro.obs.events import LOCAL_HIT, RETRANSMIT, RPC_FAIL
from repro.protocol.effects import CancelTimer, Complete, Effect, Send, SetTimer
from repro.protocol.pipeline import FLUSH_TIMER, BatchPipeline
from repro.protocol.messages import (
    ApprovalReply,
    ApprovalRequest,
    BatchReply,
    BatchRequest,
    ExtendReply,
    ExtendRequest,
    InstalledAnnounce,
    Message,
    NamespaceReply,
    NamespaceRequest,
    NotMaster,
    ReadReply,
    ReadRequest,
    RelinquishRequest,
    WriteReply,
    WriteRequest,
)
from repro.types import DatumId, HostId, Version


@dataclass(frozen=True)
class ClientConfig:
    """Client tuning knobs.

    Attributes:
        epsilon: clock-uncertainty allowance (must match the server's).
        drift_bound: bound on this clock's rate error, for duration-based
            expiry (§5).
        announce_delay_bound: assumed maximum delivery delay of an
            announce multicast; subtracted from cover-lease terms because
            announcements have no request send-time to anchor on.
        rpc_timeout: retransmission timeout for reads/extensions.
        write_timeout: retransmission timeout for writes — generous,
            because a write is *designed* to wait up to a lease term.
        max_retries: retransmissions before an operation fails.
        batch_extensions: extend all held leases together (§3.1); off for
            the ablation benchmark.
        batching: pipeline *all* outbound requests issued within one
            instant into :class:`~repro.protocol.messages.BatchRequest`
            frames (see :mod:`repro.protocol.pipeline`).  Off by default:
            disabled, the wire traffic is bit-for-bit identical to the
            pre-pipeline protocol.
        max_batch: most ops per batched frame.
        anticipatory: renew leases before they expire (§4).
        anticipate_margin: how long before expiry the anticipatory renewal
            fires, and the period of its timer.
        cache_capacity: maximum resident cache entries.
        eviction: victim-selection policy — ``"lru"`` (the default; byte-
            identical to the seed behaviour) or ``"lru-lfu"`` (hybrid
            score-based eviction, :mod:`repro.cache.eviction`).  With
            ``"lru-lfu"`` the policy is wired to the engine's lease set
            so lease-held entries are shielded from eviction.
    """

    epsilon: float = 0.1
    drift_bound: float = 0.0
    announce_delay_bound: float = 0.05
    rpc_timeout: float = 2.0
    write_timeout: float = 45.0
    max_retries: int = 8
    batch_extensions: bool = True
    batching: bool = False
    max_batch: int = 64
    anticipatory: bool = False
    anticipate_margin: float = 2.0
    cache_capacity: int = 4096
    eviction: str = "lru"


@dataclass
class _OpCtx:
    """One application-visible operation in flight."""

    op_id: int
    kind: str  # "read" | "write" | "ns"
    datum: DatumId | None
    submitted_local: float


@dataclass
class _ReqCtx:
    """One outstanding RPC (may serve several operations)."""

    req_id: int
    message: Message
    sent_local: float
    timeout: float
    retries: int = 0
    #: NotMaster redirects answered with an *immediate* resend since the
    #: last (re)transmission; bounded so a hint loop between confused
    #: replicas degrades to ordinary timeout-paced retries, never a storm.
    redirects: int = 0
    #: op_ids waiting on each datum this request covers.
    waiters: dict[DatumId, list[int]] = field(default_factory=dict)


@dataclass
class ClientMetrics:
    """Counters used by experiments and examples."""

    reads: int = 0
    writes: int = 0
    local_hits: int = 0
    extend_requests: int = 0
    read_requests: int = 0
    approvals_granted: int = 0
    retransmissions: int = 0
    failures: int = 0
    cas_conflicts: int = 0
    redirects: int = 0


class ClientEngine:
    """The client cache's protocol state machine."""

    def __init__(
        self,
        name: HostId,
        server: HostId | tuple[HostId, ...],
        config: ClientConfig | None = None,
        id_base: int = 0,
        obs=None,
    ):
        """Args:
            server: the lease authority — a single host, or the replica
                group of a replicated authority (``repro.replica``).
                With a group, requests go to one *current* target;
                :class:`~repro.protocol.messages.NotMaster` redirects and
                RPC timeouts rotate it.
            id_base: starting value for op/request/write-sequence counters.
                A restarted client must pass a fresh base (a boot epoch):
                otherwise its new requests collide with pre-crash ids —
                late replies would mis-match, and worst of all the server's
                write dedup table would swallow post-restart writes that
                reuse a pre-crash ``write_seq``.
            obs: optional :class:`~repro.obs.bus.TraceBus` receiving
                ``rpc.*``/``read.local_hit`` events.
        """
        self.name = name
        if isinstance(server, tuple):
            if not server:
                raise ReproError("empty server group")
            self.servers: tuple[HostId, ...] = server
            self.server = server[0]
        else:
            self.servers = (server,)
            self.server = server
        self.config = config or ClientConfig()
        self.obs = obs or NULL_BUS
        self.leases = LeaseSet()
        self.cache = FileCache(
            capacity=self.config.cache_capacity,
            policy=make_policy(self.config.eviction, protected=self.leases.held_datums),
        )
        self.temp = TempFileStore()
        self.metrics = ClientMetrics()
        self._ops: dict[int, _OpCtx] = {}
        self._requests: dict[int, _ReqCtx] = {}
        #: datum -> req_id of the in-flight read/extend covering it.
        self._datum_req: dict[DatumId, int] = {}
        #: datum -> local time we last raised its cache floor by approving
        #: another client's write (see _floor_write_aborted).
        self._floor_raised_at: dict[DatumId, float] = {}
        self._next_op = id_base + 1
        self._next_req = id_base + 1
        self._next_write_seq = id_base + 1
        self._pipeline = (
            BatchPipeline(self._take_req_id, self.config.max_batch)
            if self.config.batching
            else None
        )
        #: Exact-type message dispatch.  Bound at init so subclass handler
        #: overrides win; message classes are final, so ``type(msg)`` lookup
        #: matches the isinstance chain it replaces.
        self._dispatch: dict[type, Callable] = {
            ReadReply: self._on_read_reply,
            ExtendReply: self._on_extend_reply,
            WriteReply: self._on_write_reply,
            NamespaceReply: self._on_ns_reply,
            ApprovalRequest: self._on_approval_request,
            InstalledAnnounce: self._on_announce,
            NotMaster: self._on_not_master,
            BatchReply: self._on_batch_reply,
        }

    # -- lifecycle -----------------------------------------------------------

    def startup_effects(self, now: float) -> list[Effect]:
        """Effects to run when the client starts (anticipatory timer)."""
        if self.config.anticipatory:
            return [SetTimer("anticipate", self.config.anticipate_margin / 2)]
        return []

    # -- application API -------------------------------------------------------

    def read(self, datum: DatumId, now: float) -> tuple[int, list[Effect]]:
        """Read a datum; completes locally when lease and copy are valid."""
        op = self._new_op("read", datum, now)
        self.metrics.reads += 1
        if self.leases.valid(datum, now) and not self._own_write_pending(datum):
            entry = self.cache.get(datum)
            if entry is not None:
                self.metrics.local_hits += 1
                if self.obs.active:
                    self.obs.emit(LOCAL_HIT, now, self.name, datum=str(datum))
                done = Complete(op.op_id, ok=True, value=(entry.version, entry.payload))
                del self._ops[op.op_id]
                return op.op_id, [done]
        return op.op_id, self._fetch(datum, op.op_id, now)

    def write(
        self,
        datum: DatumId,
        content: bytes,
        now: float,
        cas: Version | None = None,
    ) -> tuple[int, list[Effect]]:
        """Write a file datum through to the server.

        Args:
            cas: version this write was derived from; the server rejects
                the write with a ``cas mismatch`` error if the datum has
                moved past it (lost race with a concurrent writer).
        """
        op = self._new_op("write", datum, now)
        self.metrics.writes += 1
        # The write request carries this client's *implicit approval* (§3.1),
        # and granting approval invalidates the local copy (§2).  Without
        # this, the window between the server-side commit and the arrival of
        # the WriteReply would serve the pre-write value from our own cache.
        # The raise is recorded like any approval's: if this write never
        # commits (crash-era retry confusion, cas loss), the floor it
        # prophesied must be provably lowerable or reads livelock.
        self.cache.invalidate(datum)
        self._floor_raised_at[datum] = now
        msg = WriteRequest(
            self._next_req, datum, content, write_seq=self._next_write_seq, cas=cas
        )
        self._next_req += 1
        self._next_write_seq += 1
        effects = self._send_request(
            msg, {datum: [op.op_id]}, now, self.config.write_timeout, track_datums=False
        )
        return op.op_id, effects

    def namespace_op(self, op_name: str, args: tuple, now: float) -> tuple[int, list[Effect]]:
        """Submit a namespace mutation (bind/unbind/rename/mkdir)."""
        op = self._new_op("ns", None, now)
        msg = NamespaceRequest(
            self._next_req, op_name, args, write_seq=self._next_write_seq
        )
        self._next_req += 1
        self._next_write_seq += 1
        effects = self._send_request(
            msg, {}, now, self.config.write_timeout, op_ids=[op.op_id], track_datums=False
        )
        return op.op_id, effects

    def write_temp(self, path: str, content: bytes) -> None:
        """Write a temporary file locally; never touches the server."""
        self.temp.write(path, content)

    def read_temp(self, path: str) -> bytes | None:
        """Read a temporary file from the local store."""
        return self.temp.read(path)

    def relinquish(self, datum: DatumId) -> list[Effect]:
        """Voluntarily give up a lease (client option, §4).

        Drops the holding locally and tells the server (fire-and-forget),
        which removes its record and unblocks any write that was waiting
        on this client.  The cached data is kept — it can be revalidated
        cheaply with a versioned read later.
        """
        if datum not in self.leases:
            return []
        self.leases.drop(datum)
        return self._outbound(RelinquishRequest((datum,)))

    def relinquish_all(self, now: float) -> list[Effect]:
        """Give up every held lease (e.g. ahead of a planned shutdown)."""
        datums = tuple(sorted(self.leases.held_datums(), key=str))
        if not datums:
            return []
        for datum in datums:
            self.leases.drop(datum)
        return self._outbound(RelinquishRequest(datums))

    # -- message handling ----------------------------------------------------------

    def handle_message(self, msg: Message, src: HostId, now: float) -> list[Effect]:
        """Process one inbound message; returns the effects to execute."""
        handler = self._dispatch.get(type(msg))
        if handler is None:
            raise ReproError(f"client got unexpected message {type(msg).__name__}")
        return handler(msg, now)

    def handle_timer(self, key: str, now: float) -> list[Effect]:
        """Process a timer firing; returns the effects to execute."""
        if key.startswith("rpc:"):
            return self._on_rpc_timeout(int(key.split(":", 1)[1]), now)
        if key == FLUSH_TIMER:
            return self._flush_pipeline()
        if key == "anticipate":
            return self._on_anticipate(now)
        raise ReproError(f"client got unexpected timer {key!r}")

    # -- fetch path -------------------------------------------------------------------

    def _fetch(self, datum: DatumId, op_id: int, now: float) -> list[Effect]:
        """Obtain a fresh lease (and data if needed) for a read."""
        in_flight = self._datum_req.get(datum)
        if in_flight is not None:
            self._requests[in_flight].waiters.setdefault(datum, []).append(op_id)
            return []
        entry = self.cache.peek(datum)
        holding_known = datum in self.leases
        if self.config.batch_extensions and entry is not None and holding_known:
            return self._send_extend(datum, op_id, now)
        return self._send_read(datum, op_id, now)

    def _send_read(self, datum: DatumId, op_id: int | None, now: float) -> list[Effect]:
        entry = self.cache.peek(datum)
        cached_version = entry.version if entry is not None and entry.valid else None
        msg = ReadRequest(self._next_req, datum, cached_version=cached_version)
        self._next_req += 1
        self.metrics.read_requests += 1
        waiters = {datum: [op_id] if op_id is not None else []}
        return self._send_request(msg, waiters, now, self.config.rpc_timeout)

    def _send_extend(self, datum: DatumId, op_id: int | None, now: float) -> list[Effect]:
        """Batched extension covering every held (non-cover) lease (§3.1).

        Batch order is the sorted (by ``str``) datum set and nothing else:
        the triggering datum — absent from :meth:`LeaseSet.extension_batch`
        only when it is held under a cover lease — is merged into sorted
        position, so equivalent lease states always produce byte-identical
        requests regardless of the op history that led to them.
        """
        batch = self.leases.extension_batch(now)
        if datum not in set(batch):
            insort(batch, datum, key=str)
        items = []
        waiters: dict[DatumId, list[int]] = {}
        for d in batch:
            if d in self._datum_req:
                continue  # already being fetched by another request
            entry = self.cache.peek(d)
            version = entry.version if entry is not None and entry.valid else 0
            items.append((d, version))
            waiters[d] = []
        waiters.setdefault(datum, [])
        if op_id is not None:
            waiters[datum].append(op_id)
        msg = ExtendRequest(self._next_req, tuple(items))
        self._next_req += 1
        self.metrics.extend_requests += 1
        return self._send_request(msg, waiters, now, self.config.rpc_timeout)

    def _send_request(
        self,
        msg: Message,
        waiters: dict[DatumId, list[int]],
        now: float,
        timeout: float,
        op_ids: list[int] | None = None,
        track_datums: bool = True,
    ) -> list[Effect]:
        req = _ReqCtx(
            req_id=msg.req_id,
            message=msg,
            sent_local=now,
            timeout=timeout,
            waiters=waiters,
        )
        if op_ids:
            req.waiters.setdefault(None, []).extend(op_ids)  # type: ignore[arg-type]
        self._requests[msg.req_id] = req
        if track_datums:
            # Only fetch-type requests (read/extend) coalesce later reads;
            # writes and namespace ops must not capture readers.
            for datum in waiters:
                if datum is not None:
                    self._datum_req[datum] = msg.req_id
        return [
            *self._outbound(msg),
            SetTimer(f"rpc:{msg.req_id}", self._retry_delay(timeout)),
        ]

    def _outbound(self, msg: Message) -> list[Effect]:
        """Route one outbound request: direct send, or into the pipeline.

        With batching on, the first buffered message of an instant arms a
        zero-delay flush timer; everything buffered before it fires ships
        as one batch.  Retry timers are armed by the caller either way, so
        op-level recovery is identical in both modes.
        """
        if self._pipeline is None or not BatchPipeline.wants(msg):
            return [Send(self.server, msg)]
        if self._pipeline.add(msg):
            return [SetTimer(FLUSH_TIMER, 0.0)]
        return []

    def _flush_pipeline(self) -> list[Effect]:
        if self._pipeline is None:
            return []
        return [Send(self.server, m) for m in self._pipeline.flush()]

    # -- replies ------------------------------------------------------------------------

    def _on_read_reply(self, msg: ReadReply, now: float) -> list[Effect]:
        req = self._close_request(msg.req_id)
        if req is None:
            return []  # duplicate or late reply
        effects: list[Effect] = [CancelTimer(f"rpc:{msg.req_id}")]
        op_ids = req.waiters.get(msg.datum, [])
        if msg.error is not None:
            effects.extend(self._fail_ops(op_ids, msg.error))
            return effects
        if msg.term > 0:
            expires = safe_local_expiry(
                req.sent_local, msg.term, self.config.epsilon, self.config.drift_bound
            )
            self.leases.add(msg.datum, expires, cover=msg.cover)
        if msg.payload is not None:
            admitted = self.cache.put(msg.datum, msg.version, msg.payload)
            if not admitted and self._floor_write_aborted(msg, req):
                self.cache.lower_floor(msg.datum, msg.version)
                admitted = self.cache.put(msg.datum, msg.version, msg.payload)
            if not admitted:
                # A stale in-flight reply raced an approval we granted;
                # refetch rather than hand the application old data.
                effects.extend(self._refetch(msg.datum, op_ids, now))
                return effects
        entry = self.cache.peek(msg.datum)
        if entry is None or not entry.valid:
            # Server said "unchanged" but we no longer hold the payload
            # (eviction or invalidation race): fetch the content itself.
            effects.extend(self._refetch(msg.datum, op_ids, now))
            return effects
        for op_id in op_ids:
            effects.append(self._complete_read(op_id, entry.version, entry.payload))
        return effects

    def _floor_write_aborted(self, msg: ReadReply, req: _ReqCtx) -> bool:
        """Did the write that raised ``msg.datum``'s cache floor abort?

        Approving a write raises the cache floor to the write's future
        version so that stale in-flight replies cannot re-admit older
        bytes.  But if the server then aborts that write (writer crashed,
        partitioned, or hit its deadline), the floored version never
        commits and every future reply is refused as "stale" — the client
        refetches forever and its reads livelock.

        Three facts together prove the floored write is dead, making it
        safe to lower the floor to the reply's version:

        * the request left *after* we raised the floor, so the reply
          reflects the server's post-approval state;
        * the reply grants a lease — the server defers reads while a
          write is pending, so no write is pending on the datum;
        * the version is still below the floor, so the approved write
          did not commit (server versions are monotonic).

        Genuinely stale replies (sent before the approval round) fail the
        first test and keep the floor's protection.
        """
        raised_at = self._floor_raised_at.get(msg.datum)
        return (
            raised_at is not None
            and req.sent_local > raised_at
            and msg.term > 0
            and msg.version < self.cache.floor_of(msg.datum)
        )

    def _on_extend_reply(self, msg: ExtendReply, now: float) -> list[Effect]:
        req = self._close_request(msg.req_id)
        if req is None:
            return []
        effects: list[Effect] = [CancelTimer(f"rpc:{msg.req_id}")]
        for grant in msg.grants:
            expires = safe_local_expiry(
                req.sent_local, grant.term, self.config.epsilon, self.config.drift_bound
            )
            self.leases.add(grant.datum, expires, cover=grant.cover)
            op_ids = req.waiters.get(grant.datum, [])
            if grant.changed and grant.payload is not None:
                self.cache.put(grant.datum, grant.version, grant.payload)
            entry = self.cache.peek(grant.datum)
            if entry is not None and entry.valid:
                for op_id in op_ids:
                    effects.append(
                        self._complete_read(op_id, entry.version, entry.payload)
                    )
            elif op_ids:
                effects.extend(self._refetch(grant.datum, op_ids, now))
        for datum in msg.denied:
            # Write pending at the server (or datum gone): our lease is not
            # renewed.  Waiting readers fall back to a ReadRequest, which
            # the server defers until the write drains.
            self.leases.drop(datum)
            op_ids = req.waiters.get(datum, [])
            if op_ids:
                effects.extend(self._refetch(datum, op_ids, now))
        return effects

    def _on_write_reply(self, msg: WriteReply, now: float) -> list[Effect]:
        if not hasattr(getattr(self._requests.get(msg.req_id), "message", None), "content"):
            # A WriteReply that does not answer one of our write-type
            # requests is a peer protocol violation; drop it without
            # touching the (unrelated) request it tried to impersonate.
            return []
        req = self._close_request(msg.req_id)
        effects: list[Effect] = [CancelTimer(f"rpc:{msg.req_id}")]
        op_ids = req.waiters.get(msg.datum, [])
        if msg.error is not None:
            if msg.error.startswith("cas mismatch"):
                self.metrics.cas_conflicts += 1
            effects.extend(self._fail_ops(op_ids, msg.error))
            return effects
        if self._newer_write_in_flight(msg.datum, req.message.write_seq):
            # A later write of ours on this datum is still outstanding, so
            # these bytes are already superseded at the server (writes
            # serialize per datum).  Caching them would let a valid lease
            # serve the old version as a local hit once the newer write
            # commits — raise the floor instead; the newer reply (or a
            # refetch) will repopulate the cache.  Recorded as a raise so
            # the floor can be proven dead if that newer write never
            # commits (see _floor_write_aborted).
            self.cache.invalidate(msg.datum, min_version=msg.version + 1)
            self._floor_raised_at[msg.datum] = now
        else:
            # Writes and write-back flushes both carry the committed bytes.
            self.cache.put(msg.datum, msg.version, req.message.content)
        for op_id in op_ids:
            op = self._ops.pop(op_id, None)
            if op is not None:
                effects.append(Complete(op_id, ok=True, value=msg.version))
        return effects

    def _on_ns_reply(self, msg: NamespaceReply, now: float) -> list[Effect]:
        req = self._close_request(msg.req_id)
        if req is None:
            return []
        effects: list[Effect] = [CancelTimer(f"rpc:{msg.req_id}")]
        op_ids = req.waiters.get(None, [])  # type: ignore[arg-type]
        if msg.error is not None:
            effects.extend(self._fail_ops(op_ids, msg.error))
            return effects
        for op_id in op_ids:
            op = self._ops.pop(op_id, None)
            if op is not None:
                effects.append(Complete(op_id, ok=True, value=msg.result))
        return effects

    def _on_approval_request(self, msg: ApprovalRequest, now: float) -> list[Effect]:
        """Grant approval for another client's write (§2): invalidate the
        local copy, keep the lease, reply immediately."""
        self.cache.invalidate(msg.datum, min_version=msg.new_version)
        self._floor_raised_at[msg.datum] = now
        self.metrics.approvals_granted += 1
        return self._outbound(ApprovalReply(msg.datum, msg.write_id))

    def _on_batch_reply(self, msg: BatchReply, now: float) -> list[Effect]:
        """Unpack a batched reply frame and dispatch each inner reply.

        Inner replies carry their own req_ids, so they route exactly as
        if they had arrived individually.  Nested batches are a protocol
        violation (the codec rejects them on the wire; an in-process peer
        could still construct one) and are skipped.
        """
        effects: list[Effect] = []
        for inner in msg.replies:
            if isinstance(inner, (BatchRequest, BatchReply)):
                continue
            handler = self._dispatch.get(type(inner))
            if handler is not None:
                effects.extend(handler(inner, now))
        return effects

    def _on_announce(self, msg: InstalledAnnounce, now: float) -> list[Effect]:
        """Refresh cover leases from a multicast announcement.

        Announcements are unsolicited, so there is no request send time to
        anchor the duration on; the configured delivery-delay bound is
        subtracted instead (see DESIGN.md §6).
        """
        term = max(0.0, msg.term - self.config.announce_delay_bound)
        for cover in msg.covers:
            expires = safe_local_expiry(
                now, term, self.config.epsilon, self.config.drift_bound
            )
            self.leases.extend_cover(cover, expires)
        return []

    # -- replica failover ---------------------------------------------------------------

    #: Immediate NotMaster-triggered resends per transmission before the
    #: request falls back to timeout pacing.
    _MAX_REDIRECT_RESENDS = 4

    def _on_not_master(self, msg: NotMaster, now: float) -> list[Effect]:
        """A replica we contacted is not the master: retarget and resend.

        A useful hint (a replica in our group that is not the current
        target) is followed with an immediate resend — failover costs one
        round trip, not a timeout.  No hint (election in progress), a
        stale self-referential hint, or too many immediate resends in a
        row just rotate the target and leave the retransmission to the
        request's rpc timer, so confused replicas can never drive an
        unbounded redirect storm.
        """
        req = self._requests.get(msg.req_id)
        if req is None:
            return []  # late redirect for a request already answered
        self.metrics.redirects += 1
        hint = msg.master
        useful = hint != "" and hint != self.server and hint in self.servers
        if useful:
            self.server = hint
        else:
            self._rotate_server()
        if not useful or req.redirects >= self._MAX_REDIRECT_RESENDS:
            return []  # rpc timer will retransmit to the new target
        req.redirects += 1
        return [
            *self._outbound(req.message),
            SetTimer(f"rpc:{msg.req_id}", self._retry_delay(req.timeout)),
        ]

    def _rotate_server(self) -> None:
        if len(self.servers) <= 1:
            return
        try:
            idx = self.servers.index(self.server)
        except ValueError:
            idx = -1
        self.server = self.servers[(idx + 1) % len(self.servers)]

    def _retry_delay(self, timeout: float) -> float:
        """Retransmission pacing for one request.

        Against a single server the request's own timeout paces retries —
        in particular the generous write timeout, because a live server
        holds a write silently for up to a lease term before replying.
        Against a replica group silence is ambiguous: the master may be
        holding our write, or it may be SIGKILLed (and a dead master sends
        nothing, not even ``NotMaster``).  Probe at the short rpc timeout
        so failover is found quickly; a duplicate arriving at a master
        that is still holding the original is absorbed by server-side
        write dedup.
        """
        if len(self.servers) <= 1:
            return timeout
        return min(timeout, self.config.rpc_timeout)

    def _retry_budget(self, req: _ReqCtx) -> int:
        """Retries before the request fails.

        Probing faster (``_retry_delay``) must not shrink the operation's
        wall-clock failure budget — ``max_retries * timeout`` worth of
        waiting stays the same, it is just sliced into more, shorter
        probes (rounded up per slice).
        """
        delay = self._retry_delay(req.timeout)
        if delay >= req.timeout:
            return self.config.max_retries
        return self.config.max_retries * math.ceil(req.timeout / delay)

    # -- timers ---------------------------------------------------------------------------

    def _on_rpc_timeout(self, req_id: int, now: float) -> list[Effect]:
        req = self._requests.get(req_id)
        if req is None:
            return []
        req.retries += 1
        if req.retries > self._retry_budget(req):
            self._close_request(req_id)
            all_ops = [op for ops in req.waiters.values() for op in ops]
            self.metrics.failures += 1
            if self.obs.active:
                self.obs.emit(
                    RPC_FAIL, now, self.name, req_id=req_id, retries=req.retries - 1
                )
            return self._fail_ops(all_ops, "request timed out")
        self.metrics.retransmissions += 1
        if self.obs.active:
            self.obs.emit(
                RETRANSMIT, now, self.name, req_id=req_id, retries=req.retries
            )
        if len(self.servers) > 1:
            # The current target may be dead (a SIGKILLed master answers
            # nothing, not even NotMaster): try the next replica.
            self._rotate_server()
            req.redirects = 0
        return [*self._outbound(req.message), SetTimer(f"rpc:{req_id}", req.timeout)]

    def _on_anticipate(self, now: float) -> list[Effect]:
        """Anticipatory extension (§4): renew soon-to-expire leases so
        reads never pay the extension delay — at the cost of extra load."""
        effects: list[Effect] = [
            SetTimer("anticipate", self.config.anticipate_margin / 2)
        ]
        deadline = now + self.config.anticipate_margin
        expiring = [
            d
            for d in self.leases.expiring_before(deadline)
            if d not in self._datum_req and self.leases.expires_at(d) is not None
        ]
        if expiring:
            effects.extend(self._send_extend(expiring[0], None, now))
        return effects

    # -- helpers ----------------------------------------------------------------------------

    def _own_write_pending(self, datum: DatumId) -> bool:
        """True while any write of ours on ``datum`` awaits its reply.

        The server exempts the *writer* from approval-based invalidation,
        trusting the WriteReply to update its cache — so if that reply is
        lost, our valid-lease copy may silently predate our own committed
        write.  Until the write resolves, local hits on the datum are
        unsafe; :meth:`read` falls through to a server fetch instead.
        """
        return self._newer_write_in_flight(datum, -1)

    def _newer_write_in_flight(self, datum: DatumId, write_seq: int) -> bool:
        """True when a write of ours on ``datum`` newer than ``write_seq``
        is still outstanding.

        Writes serialize per datum at the server, so a reply to the older
        write carries bytes the newer one has provably superseded (or is
        about to).  Note the asymmetry with read/extend replies: those may
        carry a version *newer* than an outstanding write's commit, so
        they must stay cacheable — ``FileCache.put`` refusing downgrades
        handles their ordering.
        """
        for req in self._requests.values():
            message = req.message
            if (
                hasattr(message, "content")
                and getattr(message, "datum", None) == datum
                and message.write_seq > write_seq
            ):
                return True
        return False

    def _refetch(self, datum: DatumId, op_ids: list[int], now: float) -> list[Effect]:
        effects = self._send_read(datum, None, now)
        req_id = self._datum_req[datum]
        self._requests[req_id].waiters.setdefault(datum, []).extend(op_ids)
        return effects

    def _complete_read(self, op_id: int, version: int, payload: object) -> Complete:
        self._ops.pop(op_id, None)
        return Complete(op_id, ok=True, value=(version, payload))

    def _fail_ops(self, op_ids: list[int], error: str) -> list[Effect]:
        effects: list[Effect] = []
        for op_id in op_ids:
            op = self._ops.pop(op_id, None)
            if op is not None:
                effects.append(Complete(op_id, ok=False, error=error))
        return effects

    def _close_request(self, req_id: int) -> _ReqCtx | None:
        req = self._requests.pop(req_id, None)
        if req is None:
            return None
        for datum in req.waiters:
            if datum is not None and self._datum_req.get(datum) == req_id:
                del self._datum_req[datum]
        return req

    def _take_req_id(self) -> int:
        req_id = self._next_req
        self._next_req += 1
        return req_id

    def _new_op(self, kind: str, datum: DatumId | None, now: float) -> _OpCtx:
        op = _OpCtx(op_id=self._next_op, kind=kind, datum=datum, submitted_local=now)
        self._next_op += 1
        self._ops[op.op_id] = op
        return op

    # -- introspection ---------------------------------------------------------------------

    def outstanding_requests(self) -> int:
        """Number of RPCs currently awaiting a reply."""
        return len(self._requests)

    def pipeline_stats(self) -> tuple[int, int]:
        """(batched frames sent, ops shipped inside them); (0, 0) unbatched."""
        if self._pipeline is None:
            return (0, 0)
        return (self._pipeline.batches_sent, self._pipeline.ops_batched)
