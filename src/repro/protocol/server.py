"""The server-side protocol engine (sans-io).

Responsibilities (paper §2, §4, §5):

* grant and extend leases according to a term policy, refusing (deferring)
  while a write is pending on the datum — the write-starvation guard;
* collect leaseholder approvals (or wait out expiry) before committing a
  write; the writer's own approval is implicit in its request;
* serialize writes per datum, and defer reads/extensions that arrive while
  a write is pending so no client caches data that is about to change;
* run the installed-files optimization: periodic multicast extension of
  cover leases with delayed update on write and no per-client record;
* support namespace mutations as writes to directory datums;
* recover from a crash by delaying all writes for the maximum term it may
  have granted before crashing.

The engine performs no I/O and never reads a clock: every entry point takes
``now`` (this host's local clock) and returns a list of effects.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable
from dataclasses import dataclass, field
from repro.errors import ReproError
from repro.lease.installed import InstalledFileManager
from repro.lease.policy import TermPolicy
from repro.lease.stats import DatumStats
from repro.lease.table import LeaseTable, PendingWrite
from repro.obs.bus import NULL_BUS
from repro.obs.events import (
    APPROVAL_REPLY,
    APPROVAL_REQUEST,
    RECOVERY_BEGIN,
    RECOVERY_END,
    RECOVERY_HOLD,
    WRITE_CAS_REJECT,
    WRITE_COMMIT,
    WRITE_DEFER,
)
from repro.protocol.effects import Broadcast, Effect, Send, SetTimer
from repro.protocol.messages import (
    ApprovalReply,
    ApprovalRequest,
    BatchReply,
    BatchRequest,
    ExtendGrant,
    ExtendReply,
    ExtendRequest,
    InstalledAnnounce,
    Message,
    NamespaceReply,
    NamespaceRequest,
    ReadReply,
    ReadRequest,
    RelinquishRequest,
    WriteReply,
    WriteRequest,
)
from repro.storage.store import FileStore
from repro.types import DatumId, DatumKind, FileClass, HostId


@dataclass(frozen=True)
class ServerConfig:
    """Server tuning knobs.

    Attributes:
        epsilon: clock-uncertainty allowance (must match the clients').
        announce_period: seconds between installed-cover multicasts.
        announce_grace: extra delay added to installed delayed updates to
            cover announce delivery/queueing slack (see DESIGN.md §6).
        recovery_delay: how long to defer writes after a restart — a
            recovering server passes the pre-crash ``max_term_granted``.
        sweep_period: how often expired lease records are reclaimed.
    """

    epsilon: float = 0.1
    announce_period: float = 5.0
    announce_grace: float = 0.05
    recovery_delay: float = 0.0
    sweep_period: float = 30.0


@dataclass
class _FileWriteCtx:
    """Bookkeeping for one in-flight file write."""

    src: HostId
    req_id: int
    datum: DatumId
    content: bytes
    write_seq: int
    pending: PendingWrite
    sharing_at_begin: int = 1
    cas: int | None = None


#: Sentinel "writer" for namespace mutations: never matches a client id,
#: so every live leaseholder of the directory — including the submitter —
#: is awaited for approval.
_NS_WRITER: HostId = "\x00namespace"


@dataclass
class _NsWriteCtx:
    """Bookkeeping for one in-flight namespace mutation."""

    src: HostId
    req_id: int
    op: str
    args: tuple
    write_seq: int
    datums: tuple[DatumId, ...] = ()
    pendings: dict[DatumId, PendingWrite] = field(default_factory=dict)
    active: bool = False

    def ready(self, now: float) -> bool:
        return all(p.ready(now) for p in self.pendings.values())


@dataclass
class _InstalledWriteCtx:
    """A delayed update of an installed file, waiting for cover expiry."""

    src: HostId
    req_id: int
    datum: DatumId
    content: bytes
    write_seq: int
    cas: int | None = None


class ServerEngine:
    """The file server's protocol state machine."""

    def __init__(
        self,
        name: HostId,
        store: FileStore,
        policy: TermPolicy,
        config: ServerConfig | None = None,
        installed: InstalledFileManager | None = None,
        now: float = 0.0,
        obs=None,
    ):
        self.name = name
        self.store = store
        self.policy = policy
        self.config = config or ServerConfig()
        self.installed = installed
        #: Trace bus for ``write.*``/``recovery.*`` events; shared with the
        #: lease table (``lease.*``).  NULL_BUS when tracing is off.
        self.obs = obs or NULL_BUS
        self.table = LeaseTable(obs=self.obs, owner=name)
        self.stats: dict[DatumId, DatumStats] = {}
        self.known_clients: set[HostId] = set()
        self._recovering_until = now + self.config.recovery_delay
        #: Last authoritative answer to "is the recovery window open?";
        #: refreshed by every ``now``-bearing check (see ``recovering``).
        self._recovery_open = self._recovering_until > now
        #: Reads/extend-items deferred behind a pending write, per datum.
        self._deferred: dict[DatumId, list[tuple[Message, HostId]]] = {}
        #: Writes deferred by crash recovery.
        self._recovery_queue: list[tuple[Message, HostId]] = []
        self._write_ctx: dict[int, _FileWriteCtx] = {}
        self._ns_queue: deque[_NsWriteCtx] = deque()
        self._installed_writes: dict[int, _InstalledWriteCtx] = {}
        #: Writes held behind a coverage-demotion barrier (§7).
        self._demotion_holds: dict[int, tuple[Message, HostId]] = {}
        self._next_installed_id = 1
        self._next_ns_id = 1
        self._ns_by_id: dict[int, _NsWriteCtx] = {}
        self._announce_seq = 0
        #: per-client write_seq -> committed result, for exactly-once
        #: writes; bounded per client (retransmission windows are short,
        #: and an unbounded map would leak on a long-lived server).
        self._write_dedup: dict[HostId, OrderedDict[int, tuple[int, str | None]]] = {}
        self._dedup_window = 256
        #: (src, write_seq) currently in flight (retransmissions ignored).
        self._inflight: set[tuple[HostId, int]] = set()
        #: Exact-type message dispatch.  Bound at init so subclass handler
        #: overrides win; message classes are final, so ``type(msg)`` lookup
        #: matches the isinstance chain it replaces.
        self._dispatch: dict[type, Callable] = {
            ReadRequest: self._handle_read,
            ExtendRequest: self._handle_extend,
            WriteRequest: self._handle_write,
            NamespaceRequest: self._handle_namespace,
            ApprovalReply: self._handle_approval,
            RelinquishRequest: self._handle_relinquish,
            BatchRequest: self._handle_batch,
        }

    # -- lifecycle -------------------------------------------------------------

    def startup_effects(self, now: float) -> list[Effect]:
        """Effects to execute when the server comes up: arm housekeeping
        timers and (when recovering) the end-of-recovery timer."""
        effects: list[Effect] = [SetTimer("sweep", self.config.sweep_period)]
        if self.installed is not None:
            effects.extend(self._announce(now))
        if self._recovering_until > now:
            if self.obs.active:
                self.obs.emit(
                    RECOVERY_BEGIN, now, self.name, until=self._recovering_until
                )
            effects.append(SetTimer("recovery", self._recovering_until - now))
        return effects

    @property
    def recovering(self) -> bool:
        """True while post-crash write delay is in force.

        Time-insensitive view reflecting the last authoritative check (the
        authoritative checks take ``now`` and go through
        :meth:`_in_recovery`); also True while recovery-deferred writes
        are still queued for replay.
        """
        return self._recovery_open or bool(self._recovery_queue)

    def _in_recovery(self, now: float) -> bool:
        """Authoritative recovery-window check; records the answer.

        The first check past the window flips the cached state used by
        :attr:`recovering` and emits the ``recovery.end`` trace event —
        previously the property reported True forever once
        ``recovery_delay`` was configured, long after the window passed.
        """
        open_ = now < self._recovering_until
        if self._recovery_open and not open_:
            self._recovery_open = False
            if self.obs.active:
                self.obs.emit(
                    RECOVERY_END, now, self.name, queued=len(self._recovery_queue)
                )
        return open_

    # -- dispatch -------------------------------------------------------------

    def handle_message(self, msg: Message, src: HostId, now: float) -> list[Effect]:
        """Process one inbound message; returns the effects to execute."""
        self.known_clients.add(src)
        handler = self._dispatch.get(type(msg))
        if handler is None:
            raise ReproError(f"server got unexpected message {type(msg).__name__}")
        return handler(msg, src, now)

    def handle_timer(self, key: str, now: float) -> list[Effect]:
        """Process a timer firing; returns the effects to execute."""
        if key == "sweep":
            self.table.expire_sweep(now)
            return [SetTimer("sweep", self.config.sweep_period)]
        if key == "announce":
            return self._announce(now)
        if key == "recovery":
            if self._in_recovery(now):
                # The clock stepped backward while the timer was armed, so
                # it fired with the window still open locally.  Re-arm for
                # the remainder — replaying now would re-queue every write
                # with no timer left to ever release them.
                return [SetTimer("recovery", self._recovering_until - now)]
            queued, self._recovery_queue = self._recovery_queue, []
            effects: list[Effect] = []
            for msg, src in queued:
                # The write was marked in flight when queued (so that
                # retransmissions during recovery are swallowed); unmark it
                # so the replay is not swallowed by its own dedup entry.
                self._inflight.discard((src, msg.write_seq))
                effects.extend(self.handle_message(msg, src, now))
            return effects
        if key.startswith("write:"):
            return self._on_write_deadline(int(key.split(":", 1)[1]), now)
        if key.startswith("nswrite:"):
            return self._on_ns_deadline(int(key.split(":", 1)[1]), now)
        if key.startswith("iwrite:"):
            return self._on_installed_ready(int(key.split(":", 1)[1]), now)
        if key.startswith("dmwrite:"):
            msg, src = self._demotion_holds.pop(int(key.split(":", 1)[1]))
            self._inflight.discard((src, msg.write_seq))
            return self.handle_message(msg, src, now)
        raise ReproError(f"server got unexpected timer {key!r}")

    # -- reads ------------------------------------------------------------------

    def _handle_read(self, msg: ReadRequest, src: HostId, now: float) -> list[Effect]:
        datum = msg.datum
        if not self.store.datum_exists(datum):
            return [Send(src, ReadReply(msg.req_id, datum, error="no such datum"))]
        if self._write_blocked(datum):
            self._deferred.setdefault(datum, []).append((msg, src))
            if self.obs.active:
                self.obs.emit(
                    WRITE_DEFER, now, self.name,
                    datum=str(datum), src=src, reason="write_pending",
                )
            return []
        version, payload = self.store.read_datum(datum)
        self._stats_of(datum).record_read(now)
        term, cover = self._grant(datum, src, now)
        return [
            Send(
                src,
                ReadReply(
                    msg.req_id,
                    datum,
                    version=version,
                    payload=None if msg.cached_version == version else payload,
                    term=term,
                    cover=cover,
                ),
            )
        ]

    def _handle_extend(self, msg: ExtendRequest, src: HostId, now: float) -> list[Effect]:
        grants: list[ExtendGrant] = []
        denied: list[DatumId] = []
        for datum, cached_version in msg.items:
            if not self.store.datum_exists(datum) or self._write_blocked(datum):
                denied.append(datum)
                continue
            term, cover = self._grant(datum, src, now)
            if term <= 0:
                denied.append(datum)
                continue
            # Extensions are the server's only ongoing visibility into a
            # leased datum's popularity; count them as read activity for
            # the adaptive policies (§4, §7).
            self._stats_of(datum).record_read(now)
            version, payload = self.store.read_datum(datum)
            changed = cached_version != version
            grants.append(
                ExtendGrant(
                    datum,
                    term,
                    version,
                    payload=payload if changed else None,
                    changed=changed,
                    cover=cover,
                )
            )
        return [Send(src, ExtendReply(msg.req_id, tuple(grants), tuple(denied)))]

    def _grant(self, datum: DatumId, src: HostId, now: float) -> tuple[float, str | None]:
        """Grant a lease; returns (term, cover id or None).

        Covered (installed) datums get the remaining validity of the
        cover's last announcement and **no per-client record** — the whole
        point of the optimization.  Everything else goes through the policy
        and the lease table.
        """
        if self.installed is not None:
            cover = self.installed.cover_of(datum)
            if cover is not None:
                expiry = self.installed._announced_expiry.get(cover)
                term = max(0.0, expiry - now) if expiry is not None else 0.0
                return term, cover
        file_class = self._class_of(datum)
        term = self.policy.term(
            datum, src, now, stats=self.stats.get(datum), file_class=file_class
        )
        if term > 0:
            self.table.grant(datum, src, now, term)
        return term, None

    # -- file writes --------------------------------------------------------------

    def _handle_write(self, msg: WriteRequest, src: HostId, now: float) -> list[Effect]:
        dedup = self._check_dedup(src, msg)
        if dedup is not None:
            return dedup
        datum = msg.datum
        if datum.kind is not DatumKind.FILE:
            return [
                Send(src, WriteReply(msg.req_id, datum, error="not a file datum"))
            ]
        if not self.store.datum_exists(datum):
            return [Send(src, WriteReply(msg.req_id, datum, error="no such datum"))]
        rejected = self._cas_reject(msg.cas, datum, src, msg.req_id, msg.write_seq, now)
        if rejected is not None:
            return rejected
        self._inflight.add((src, msg.write_seq))
        if self._in_recovery(now):
            self._recovery_queue.append((msg, src))
            if self.obs.active:
                self.obs.emit(
                    RECOVERY_HOLD, now, self.name, src=src, write_seq=msg.write_seq
                )
            return []
        if self.installed is not None:
            if self.installed.cover_of(datum) is not None:
                return self._begin_installed_write(msg, src, now)
            barrier = self.installed.demotion_barrier(datum)
            if barrier > now:
                # Recently demoted (§7): old cover announcements may still
                # be honored at some client; wait them out, then proceed
                # as a normal write.
                hold_id = self._next_installed_id
                self._next_installed_id += 1
                self._demotion_holds[hold_id] = (msg, src)
                if self.obs.active:
                    self.obs.emit(
                        WRITE_DEFER, now, self.name,
                        datum=str(datum), src=src, reason="demotion_barrier",
                    )
                return [SetTimer(f"dmwrite:{hold_id}", barrier - now)]
        return self._begin_file_write(msg, src, now)

    def _begin_file_write(self, msg: WriteRequest, src: HostId, now: float) -> list[Effect]:
        pending = self.table.begin_write(msg.datum, src, now)
        ctx = _FileWriteCtx(
            src=src,
            req_id=msg.req_id,
            datum=msg.datum,
            content=msg.content,
            write_seq=msg.write_seq,
            pending=pending,
            sharing_at_begin=len(pending.awaiting) + 1,
            cas=msg.cas,
        )
        self._write_ctx[pending.write_id] = ctx
        if self.table.head_write(msg.datum) is pending:
            return self._activate_file_write(ctx, now)
        return []  # queued behind an earlier write on the same datum

    def _activate_file_write(self, ctx: _FileWriteCtx, now: float) -> list[Effect]:
        """The write reached the head of its datum's queue: ask approvals
        or commit immediately."""
        if ctx.cas is not None and self.store.version_of(ctx.datum) != ctx.cas:
            # An earlier queued write committed first: this writer's basis
            # version is gone, so reject rather than clobber (the CAS
            # contract).  Checked at activation — once a file write is at
            # the head of its queue nothing else can commit to the datum,
            # so the predicate cannot change before our own commit.
            return self._reject_file_write(ctx, now)
        pending = ctx.pending
        if pending.ready(now):
            return self._commit_file_write(ctx, now)
        new_version = self.store.version_of(ctx.datum) + 1
        request = ApprovalRequest(ctx.datum, pending.write_id, new_version)
        if self.obs.active:
            self.obs.emit(
                APPROVAL_REQUEST, now, self.name,
                datum=str(ctx.datum), write_id=pending.write_id,
                awaiting=len(pending.awaiting),
            )
        effects: list[Effect] = [Broadcast(tuple(sorted(pending.awaiting)), request)]
        if pending.deadline != float("inf"):
            effects.append(
                SetTimer(f"write:{pending.write_id}", max(0.0, pending.deadline - now))
            )
        return effects

    def _commit_file_write(self, ctx: _FileWriteCtx, now: float) -> list[Effect]:
        version = self.store.commit_file_write(ctx.datum, ctx.content, now)
        if self.obs.active:
            self.obs.emit(
                WRITE_COMMIT, now, self.name,
                datum=str(ctx.datum), writer=ctx.src, version=version,
            )
        self._stats_of(ctx.datum).record_write(now, ctx.sharing_at_begin)
        self._record_commit(ctx.src, ctx.write_seq, version, None)
        self.table.finish_write(ctx.datum, ctx.pending.write_id)
        del self._write_ctx[ctx.pending.write_id]
        effects: list[Effect] = [
            Send(ctx.src, WriteReply(ctx.req_id, ctx.datum, version=version))
        ]
        effects.extend(self._after_write_drains(ctx.datum, now))
        return effects

    def _cas_reject(
        self,
        cas: int | None,
        datum: DatumId,
        src: HostId,
        req_id: int,
        write_seq: int,
        now: float,
    ) -> list[Effect] | None:
        """Reject a stale CAS write; None when the write may proceed.

        The rejection is recorded in the dedup window so retransmissions
        get the identical answer even if the datum's version later happens
        to equal the (bogus) expected one.
        """
        if cas is None:
            return None
        version = self.store.version_of(datum)
        if version == cas:
            return None
        error = f"cas mismatch: expected {cas}, datum at {version}"
        if self.obs.active:
            self.obs.emit(
                WRITE_CAS_REJECT, now, self.name,
                datum=str(datum), writer=src, expected=cas, found=version,
            )
        self._record_commit(src, write_seq, version, error)
        return [Send(src, WriteReply(req_id, datum, version=version, error=error))]

    def _reject_file_write(self, ctx: _FileWriteCtx, now: float) -> list[Effect]:
        """Tear down a queued write whose CAS guard failed at activation."""
        effects = self._cas_reject(
            ctx.cas, ctx.datum, ctx.src, ctx.req_id, ctx.write_seq, now
        )
        assert effects is not None
        self.table.finish_write(ctx.datum, ctx.pending.write_id)
        del self._write_ctx[ctx.pending.write_id]
        effects.extend(self._after_write_drains(ctx.datum, now))
        return effects

    def _on_write_deadline(self, write_id: int, now: float) -> list[Effect]:
        ctx = self._write_ctx.get(write_id)
        if ctx is None:
            return []  # already committed via approvals
        if self.table.head_write(ctx.datum) is not ctx.pending:
            return []  # stale timer; activation re-arms when it's our turn
        if ctx.pending.ready(now):
            return self._commit_file_write(ctx, now)
        if ctx.pending.deadline != float("inf"):
            # Fired before the local deadline: the clock stepped backward
            # (or its drift changed) while the timer was armed.  Re-arm
            # for the remainder — dropping the wait would wedge every
            # write and deferred read on this datum forever.
            return [
                SetTimer(f"write:{write_id}", max(0.0, ctx.pending.deadline - now))
            ]
        return []

    def _handle_approval(self, msg: ApprovalReply, src: HostId, now: float) -> list[Effect]:
        pending = self.table.approve(msg.datum, src, msg.write_id)
        if pending is None:
            return []
        if self.obs.active:
            self.obs.emit(
                APPROVAL_REPLY, now, self.name,
                datum=str(msg.datum), write_id=msg.write_id, holder=src,
            )
        if not pending.ready(now):
            return []
        return self._try_commit_head(msg.datum, now)

    def _handle_relinquish(
        self, msg: RelinquishRequest, src: HostId, now: float
    ) -> list[Effect]:
        """Drop the client's leases; any write they were blocking may now
        proceed (§4: relinquishing is a client option, and it is what lets
        a well-behaved cache shrink without waiting out terms)."""
        effects: list[Effect] = []
        for datum in msg.datums:
            self.table.release(datum, src, now)
            committed = self._try_commit_head(datum, now)
            effects.extend(committed)
            if not committed:
                # The departure may have pulled the expiry deadline in;
                # re-arm the pending write's timer to the new deadline.
                effects.extend(self._rearm_write_timer(datum, now))
        return effects

    def _handle_batch(self, msg: BatchRequest, src: HostId, now: float) -> list[Effect]:
        """Process one pipelined frame (see :mod:`repro.protocol.pipeline`).

        Each inner op runs through its normal handler; every immediate
        reply to the sender is coalesced into a single
        :class:`BatchReply`, while all other effects — approval
        broadcasts, timers, sends to other clients triggered by e.g. a
        deferred-read flush — pass through unchanged.  Ops the handlers
        defer (write pending, recovery) reply later as ordinary unbatched
        messages.  Nested batches and unknown members are protocol
        violations and are skipped.
        """
        passthrough: list[Effect] = []
        replies: list[Message] = []
        for op in msg.ops:
            if isinstance(op, (BatchRequest, BatchReply)):
                continue
            handler = self._dispatch.get(type(op))
            if handler is None:
                continue
            for effect in handler(op, src, now):
                if isinstance(effect, Send) and effect.dst == src:
                    replies.append(effect.message)
                else:
                    passthrough.append(effect)
        if replies:
            passthrough.append(Send(src, BatchReply(msg.batch_id, tuple(replies))))
        return passthrough

    def _rearm_write_timer(self, datum: DatumId, now: float) -> list[Effect]:
        """Refresh the expiry timer of a datum's head write (if any)."""
        pending = self.table.head_write(datum)
        if pending is None or not pending.awaiting or pending.deadline == float("inf"):
            return []
        delay = max(0.0, pending.deadline - now)
        if pending.write_id in self._write_ctx:
            return [SetTimer(f"write:{pending.write_id}", delay)]
        ns_ctx = self._ns_by_write_id(pending.write_id)
        if ns_ctx is not None:
            ns_id = next((i for i, c in self._ns_by_id.items() if c is ns_ctx), None)
            if ns_id is not None:
                return [SetTimer(f"nswrite:{ns_id}", delay)]
        return []

    def _try_commit_head(self, datum: DatumId, now: float) -> list[Effect]:
        """Commit the datum's head write if it just became ready."""
        pending = self.table.head_write(datum)
        if pending is None or not pending.ready(now):
            return []
        file_ctx = self._write_ctx.get(pending.write_id)
        if file_ctx is not None:
            return self._commit_file_write(file_ctx, now)
        ns_ctx = self._ns_by_write_id(pending.write_id)
        if ns_ctx is not None and ns_ctx.ready(now):
            return self._commit_namespace(ns_ctx, now)
        return []

    # -- installed-file writes (delayed update, §4) ----------------------------------

    def _begin_installed_write(
        self, msg: WriteRequest, src: HostId, now: float
    ) -> list[Effect]:
        ready_at = self.installed.begin_write(msg.datum, now) + self.config.announce_grace
        # A datum promoted into a cover (§7 adaptive coverage) may still
        # have per-client leases from before the promotion; honor them.
        ready_at = max(ready_at, self.table.max_expiry_of(msg.datum, now))
        ctx = _InstalledWriteCtx(
            src=src,
            req_id=msg.req_id,
            datum=msg.datum,
            content=msg.content,
            write_seq=msg.write_seq,
            cas=msg.cas,
        )
        iwrite_id = self._next_installed_id
        self._next_installed_id += 1
        self._installed_writes[iwrite_id] = ctx
        if ready_at <= now:
            return self._on_installed_ready(iwrite_id, now)
        return [SetTimer(f"iwrite:{iwrite_id}", ready_at - now)]

    def _on_installed_ready(self, iwrite_id: int, now: float) -> list[Effect]:
        ctx = self._installed_writes.pop(iwrite_id)
        rejected = self._cas_reject(
            ctx.cas, ctx.datum, ctx.src, ctx.req_id, ctx.write_seq, now
        )
        if rejected is not None:
            # Another delayed update committed during the cover wait.
            self.installed.finish_write(ctx.datum)
            rejected.extend(self._flush_deferred(ctx.datum, now))
            return rejected
        version = self.store.commit_file_write(ctx.datum, ctx.content, now)
        if self.obs.active:
            self.obs.emit(
                WRITE_COMMIT, now, self.name,
                datum=str(ctx.datum), writer=ctx.src, version=version,
            )
        self.installed.finish_write(ctx.datum)
        self._stats_of(ctx.datum).record_write(now, 1)
        self._record_commit(ctx.src, ctx.write_seq, version, None)
        effects: list[Effect] = [
            Send(ctx.src, WriteReply(ctx.req_id, ctx.datum, version=version))
        ]
        effects.extend(self._flush_deferred(ctx.datum, now))
        return effects

    def _announce(self, now: float) -> list[Effect]:
        covers, term = self.installed.announcement(now)
        self._announce_seq += 1
        effects: list[Effect] = [SetTimer("announce", self.config.announce_period)]
        recipients = tuple(sorted(self.known_clients))
        if covers and recipients:
            effects.append(
                Broadcast(
                    recipients,
                    InstalledAnnounce(tuple(covers), term, seq=self._announce_seq),
                )
            )
        return effects

    # -- namespace writes -------------------------------------------------------------

    def _handle_namespace(
        self, msg: NamespaceRequest, src: HostId, now: float
    ) -> list[Effect]:
        dedup = self._check_dedup(src, msg)
        if dedup is not None:
            return dedup
        if self._in_recovery(now):
            self._inflight.add((src, msg.write_seq))
            self._recovery_queue.append((msg, src))
            if self.obs.active:
                self.obs.emit(
                    RECOVERY_HOLD, now, self.name, src=src, write_seq=msg.write_seq
                )
            return []
        try:
            datums = self._namespace_targets(msg)
        except ReproError as exc:
            return [Send(src, NamespaceReply(msg.req_id, msg.op, error=str(exc)))]
        self._inflight.add((src, msg.write_seq))
        ctx = _NsWriteCtx(
            src=src,
            req_id=msg.req_id,
            op=msg.op,
            args=msg.args,
            write_seq=msg.write_seq,
            datums=datums,
        )
        ns_id = self._next_ns_id
        self._next_ns_id += 1
        self._ns_by_id[ns_id] = ctx
        self._ns_queue.append(ctx)
        if self._ns_queue[0] is ctx:
            return self._activate_namespace(ns_id, ctx, now)
        return []  # namespace ops serialize globally (no multi-queue deadlock)

    def _activate_namespace(self, ns_id: int, ctx: _NsWriteCtx, now: float) -> list[Effect]:
        ctx.active = True
        effects: list[Effect] = []
        deadline = now
        for datum in ctx.datums:
            # Unlike a file write, a namespace op grants NO implicit
            # self-approval: the submitter cannot reconstruct the new
            # directory payload from its request, so if it holds a lease on
            # the directory it must be called back like any other holder —
            # otherwise it would keep serving its own stale binding from
            # cache after the commit (found by the path-API tests).
            pending = self.table.begin_write(datum, _NS_WRITER, now)
            ctx.pendings[datum] = pending
            deadline = max(deadline, pending.deadline)
            if pending.awaiting:
                new_version = self.store.version_of(datum) + 1
                if self.obs.active:
                    self.obs.emit(
                        APPROVAL_REQUEST, now, self.name,
                        datum=str(datum), write_id=pending.write_id,
                        awaiting=len(pending.awaiting),
                    )
                effects.append(
                    Broadcast(
                        tuple(sorted(pending.awaiting)),
                        ApprovalRequest(datum, pending.write_id, new_version),
                    )
                )
        if ctx.ready(now):
            return self._commit_namespace(ctx, now)
        if deadline != float("inf"):
            effects.append(SetTimer(f"nswrite:{ns_id}", max(0.0, deadline - now)))
        return effects

    def _on_ns_deadline(self, ns_id: int, now: float) -> list[Effect]:
        ctx = self._ns_by_id.get(ns_id)
        if ctx is None or not ctx.active:
            return []
        if ctx.ready(now):
            return self._commit_namespace(ctx, now)
        deadline = max(p.deadline for p in ctx.pendings.values())
        if deadline != float("inf"):
            # Early firing (backward clock step while armed): re-arm, as
            # in _on_write_deadline.
            return [SetTimer(f"nswrite:{ns_id}", max(0.0, deadline - now))]
        return []

    def _commit_namespace(self, ctx: _NsWriteCtx, now: float) -> list[Effect]:
        error: str | None = None
        result: object = None
        ns = self.store.namespace
        try:
            if ctx.op == "mkdir":
                (path,) = ctx.args
                result = ns.mkdir(path)
            elif ctx.op == "bind":
                path, content, file_class_name = ctx.args
                record = self.store.create_file(
                    path, content, file_class=FileClass(file_class_name), now=now
                )
                result = record.file_id
            elif ctx.op == "unbind":
                (path,) = ctx.args
                self.store.unlink(path)
            elif ctx.op == "rename":
                old, new = ctx.args
                ns.rename(old, new)
            else:
                error = f"unknown namespace op {ctx.op!r}"
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
        for datum, pending in ctx.pendings.items():
            self._stats_of(datum).record_write(now, len(pending.awaiting) + 1)
            self.table.finish_write(datum, pending.write_id)
            if self.obs.active:
                self.obs.emit(
                    WRITE_COMMIT, now, self.name,
                    datum=str(datum), writer=ctx.src,
                    version=self.store.version_of(datum),
                )
        self._record_commit(ctx.src, ctx.write_seq, 0, error)
        self._ns_queue.popleft()
        for ns_id, known in list(self._ns_by_id.items()):
            if known is ctx:
                del self._ns_by_id[ns_id]
        effects: list[Effect] = [
            Send(ctx.src, NamespaceReply(ctx.req_id, ctx.op, error=error, result=result))
        ]
        for datum in ctx.datums:
            effects.extend(self._after_write_drains(datum, now))
        if self._ns_queue:
            head = self._ns_queue[0]
            head_id = next(i for i, c in self._ns_by_id.items() if c is head)
            effects.extend(self._activate_namespace(head_id, head, now))
        return effects

    def _namespace_targets(self, msg: NamespaceRequest) -> tuple[DatumId, ...]:
        """The directory datums a namespace op writes (approval targets)."""
        ns = self.store.namespace
        if msg.op in ("mkdir", "bind", "unbind"):
            (path,) = msg.args[:1]
            return (DatumId.directory(ns.parent_dir_id(path)),)
        if msg.op == "rename":
            old, new = msg.args
            datums = {
                DatumId.directory(ns.parent_dir_id(old)),
                DatumId.directory(ns.parent_dir_id(new)),
            }
            return tuple(sorted(datums, key=str))
        raise ReproError(f"unknown namespace op {msg.op!r}")

    # -- shared helpers -------------------------------------------------------------

    def _write_blocked(self, datum: DatumId) -> bool:
        """True when reads/extends of ``datum`` must defer behind a write."""
        if self.table.write_pending(datum):
            return True
        if self.installed is not None and self.installed.write_pending(datum):
            return True
        if not self._ns_queue:
            return False
        return any(
            ctx.active and datum in ctx.pendings for ctx in self._ns_queue
        )

    def _after_write_drains(self, datum: DatumId, now: float) -> list[Effect]:
        """A write on ``datum`` finished: activate the next queued write,
        then (if none) replay the deferred reads."""
        effects: list[Effect] = []
        nxt = self.table.head_write(datum)
        if nxt is not None:
            ctx = self._write_ctx.get(nxt.write_id)
            if ctx is not None:
                effects.extend(self._activate_file_write(ctx, now))
            return effects
        effects.extend(self._flush_deferred(datum, now))
        return effects

    def _flush_deferred(self, datum: DatumId, now: float) -> list[Effect]:
        if self._write_blocked(datum):
            return []
        waiting = self._deferred.pop(datum, [])
        effects: list[Effect] = []
        for msg, src in waiting:
            effects.extend(self.handle_message(msg, src, now))
        return effects

    def _check_dedup(self, src: HostId, msg) -> list[Effect] | None:
        """Exactly-once writes: answer retransmissions of committed writes,
        swallow retransmissions of in-flight ones."""
        done = self._write_dedup.get(src, {}).get(msg.write_seq)
        if done is not None:
            version, error = done
            if isinstance(msg, NamespaceRequest):
                return [Send(src, NamespaceReply(msg.req_id, msg.op, error=error))]
            return [
                Send(src, WriteReply(msg.req_id, msg.datum, version=version, error=error))
            ]
        if (src, msg.write_seq) in self._inflight:
            return []
        return None

    def _record_commit(
        self, src: HostId, write_seq: int, version: int, error: str | None
    ) -> None:
        window = self._write_dedup.setdefault(src, OrderedDict())
        window[write_seq] = (version, error)
        while len(window) > self._dedup_window:
            window.popitem(last=False)
        self._inflight.discard((src, write_seq))

    def _stats_of(self, datum: DatumId) -> DatumStats:
        stats = self.stats.get(datum)
        if stats is None:
            stats = DatumStats()
            self.stats[datum] = stats
        return stats

    def _class_of(self, datum: DatumId) -> FileClass:
        if datum.kind is DatumKind.FILE:
            return self.store.file(datum.ident).file_class
        return FileClass.NORMAL

    def _ns_by_write_id(self, write_id: int) -> _NsWriteCtx | None:
        for ctx in self._ns_queue:
            for pending in ctx.pendings.values():
                if pending.write_id == write_id:
                    return ctx
        return None

    # -- introspection -----------------------------------------------------------------

    def lease_count(self) -> int:
        """Stored lease records (the paper's ~1 KB/client storage point)."""
        return self.table.lease_count()

    def status(self, now: float) -> dict:
        """Operational snapshot for monitoring and the CLI's stats line.

        The paper's storage argument (§2: "around one kilobyte per
        client") is observable here: ``lease_records`` stays small under
        short terms because expired records are reclaimed.
        """
        deferred = sum(len(waiting) for waiting in self._deferred.values())
        pending_writes = len(self._write_ctx) + len(self._installed_writes) + len(
            self._ns_queue
        )
        snapshot = {
            "now": now,
            "known_clients": len(self.known_clients),
            "lease_records": self.table.lease_count(),
            "pending_writes": pending_writes,
            "deferred_requests": deferred,
            "tracked_datums": len(self.stats),
            "dedup_entries": sum(len(w) for w in self._write_dedup.values()),
            "recovering": self._in_recovery(now),
            "files": self.store.file_count(),
        }
        if self.installed is not None:
            snapshot["covers"] = len(self.installed.covers())
        return snapshot
