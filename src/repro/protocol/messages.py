"""Protocol messages.

All messages are frozen dataclasses.  Requests carry a client-chosen
``req_id`` echoed in the reply so retransmitted requests and duplicate
replies can be matched and deduplicated; writes additionally carry a
per-client ``write_seq`` so a retransmitted write commits at most once.

Message *kind* strings (used for the server-load accounting that Figure 1
measures) are derived from the class: ``lease/read``, ``lease/extend``,
``lease/write``, ``lease/approve``, ``lease/announce``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.types import DatumId, Version


@dataclass(frozen=True, slots=True)
class Message:
    """Base class for all protocol messages.

    ``kind`` — the traffic-accounting category — is a per-class string
    attribute declared in each class body, so reading it on the send path
    is one attribute lookup with no per-message dict or property-call
    overhead.  (:data:`KIND_BY_TYPE` at the bottom of this module is
    derived from the classes, not the other way round — class bodies keep
    the attribute visible to the compiled build.)
    """

    kind: ClassVar[str] = "msg"


@dataclass(frozen=True, slots=True)
class ReadRequest(Message):
    """Fetch a datum (and a lease over it).

    Attributes:
        req_id: client-unique request id, echoed in the reply.
        datum: what to read.
        cached_version: version of the client's (possibly stale) cached
            copy, or None; lets the server omit the payload when the copy
            is still current.
    """

    kind: ClassVar[str] = "lease/read"

    req_id: int
    datum: DatumId
    cached_version: Version | None = None


@dataclass(frozen=True, slots=True)
class ReadReply(Message):
    """Reply to :class:`ReadRequest`.

    Attributes:
        version: current committed version.
        payload: datum contents, or None when ``cached_version`` was
            already current.
        term: lease term granted (0 = no lease).
        cover: installed-files cover lease id, or None for a per-client
            lease; covered datums are extended by multicast announcements.
        error: error string, or None on success.
    """

    kind: ClassVar[str] = "lease/read"

    req_id: int
    datum: DatumId
    version: Version = 0
    payload: object = None
    term: float = 0.0
    cover: str | None = None
    error: str | None = None


@dataclass(frozen=True, slots=True)
class ExtendRequest(Message):
    """Batched lease extension (§3.1: extend all held leases together).

    Attributes:
        items: tuple of (datum, cached_version) pairs.
    """

    kind: ClassVar[str] = "lease/extend"

    req_id: int
    items: tuple[tuple[DatumId, Version], ...]


@dataclass(frozen=True, slots=True)
class ExtendGrant:
    """One granted extension inside an :class:`ExtendReply`.

    ``payload`` is None when the client's cached version is still current
    (the common case — this is what makes extension cheap).  ``cover``
    migrates the holding onto an installed cover lease when the datum was
    promoted since the client last fetched it (§4/§7).
    """

    datum: DatumId
    term: float
    version: Version
    payload: object = None
    changed: bool = False
    cover: str | None = None


@dataclass(frozen=True, slots=True)
class ExtendReply(Message):
    """Reply to :class:`ExtendRequest`.

    Attributes:
        grants: extensions granted.
        denied: datums on which no lease was granted (write pending — the
            starvation guard; the client falls back to a ReadRequest, which
            the server will defer behind the write).
    """

    kind: ClassVar[str] = "lease/extend"

    req_id: int
    grants: tuple[ExtendGrant, ...] = ()
    denied: tuple[DatumId, ...] = ()


@dataclass(frozen=True, slots=True)
class WriteRequest(Message):
    """Write-through of a file datum.

    The requester's lease (if any) carries implicit approval, so the server
    never calls back the writer itself.

    Attributes:
        write_seq: per-client monotonically increasing sequence number for
            exactly-once commit under retransmission.
        cas: compare-and-set guard — the version the writer read before
            producing ``content``, or None for an unconditional write.
            The server rejects the write (``error="cas mismatch..."``)
            if the datum's committed version no longer matches, so
            concurrent in-flight writers cannot silently clobber each
            other once requests are pipelined.
    """

    kind: ClassVar[str] = "lease/write"

    req_id: int
    datum: DatumId
    content: bytes
    write_seq: int = 0
    cas: Version | None = None


@dataclass(frozen=True, slots=True)
class WriteReply(Message):
    """Reply to :class:`WriteRequest` once the write has committed."""

    kind: ClassVar[str] = "lease/write"

    req_id: int
    datum: DatumId
    version: Version = 0
    error: str | None = None


@dataclass(frozen=True, slots=True)
class ApprovalRequest(Message):
    """Server-to-leaseholder callback: may this write proceed?"""

    kind: ClassVar[str] = "lease/approve"

    datum: DatumId
    write_id: int
    new_version: Version


@dataclass(frozen=True, slots=True)
class ApprovalReply(Message):
    """Leaseholder's approval (it has invalidated its cached copy)."""

    kind: ClassVar[str] = "lease/approve"

    datum: DatumId
    write_id: int


@dataclass(frozen=True, slots=True)
class NamespaceRequest(Message):
    """A namespace mutation: a *write* to directory datum(s).

    Attributes:
        op: one of ``"bind"``, ``"unbind"``, ``"rename"``, ``"mkdir"``.
        args: operation arguments (paths, and content for ``bind``).
    """

    kind: ClassVar[str] = "lease/namespace"

    req_id: int
    op: str
    args: tuple = ()
    write_seq: int = 0


@dataclass(frozen=True, slots=True)
class NamespaceReply(Message):
    """Reply to :class:`NamespaceRequest`."""

    kind: ClassVar[str] = "lease/namespace"

    req_id: int
    op: str
    error: str | None = None
    result: object = None


@dataclass(frozen=True, slots=True)
class InstalledAnnounce(Message):
    """Periodic multicast extension of installed-file cover leases (§4)."""

    kind: ClassVar[str] = "lease/announce"

    covers: tuple[str, ...]
    term: float
    seq: int = 0


@dataclass(frozen=True, slots=True)
class RelinquishRequest(Message):
    """Voluntarily give up leases (client option, §4).

    Fire-and-forget: no reply is needed — the worst a lost relinquish
    costs is waiting out the term, which is the default anyway.  The
    server drops its records and, crucially, removes the client from any
    write's awaiting set, unblocking writers immediately.
    """

    kind: ClassVar[str] = "lease/relinquish"

    datums: tuple[DatumId, ...]


# -- write-back extension (§2: non-write-through caches; §6: MFS/Echo tokens) --


@dataclass(frozen=True, slots=True)
class WriteLeaseRequest(Message):
    """Acquire an exclusive *write lease* on a datum.

    A write lease lets the holder buffer writes locally (write-back).
    Granting it requires the approval or expiry of every read lease, like
    a write does.
    """

    kind: ClassVar[str] = "lease/wlease"

    req_id: int
    datum: DatumId
    cached_version: Version | None = None


@dataclass(frozen=True, slots=True)
class WriteLeaseReply(Message):
    """Reply to :class:`WriteLeaseRequest` once exclusivity is achieved."""

    kind: ClassVar[str] = "lease/wlease"

    req_id: int
    datum: DatumId
    version: Version = 0
    payload: object = None
    term: float = 0.0
    error: str | None = None


@dataclass(frozen=True, slots=True)
class RecallRequest(Message):
    """Server-to-owner callback: surrender the write lease (flush dirty
    data).  Sent when another client needs the datum."""

    kind: ClassVar[str] = "lease/recall"

    datum: DatumId
    recall_id: int


@dataclass(frozen=True, slots=True)
class RecallReply(Message):
    """Owner's response to a recall: the dirty contents, or None if the
    cached copy was clean.  The write lease is relinquished either way."""

    kind: ClassVar[str] = "lease/recall"

    datum: DatumId
    recall_id: int
    dirty: bytes | None = None


@dataclass(frozen=True, slots=True)
class FlushRequest(Message):
    """Voluntary write-back of dirty data by the write-lease owner
    (e.g. ahead of lease expiry).  The lease is retained."""

    kind: ClassVar[str] = "lease/flush"

    req_id: int
    datum: DatumId
    content: bytes
    write_seq: int = 0


# -- replicated lease authority (PaxosLease master lease; repro.replica) --


@dataclass(frozen=True, slots=True)
class PrepareRequest(Message):
    """PaxosLease phase 1: ask acceptors to promise ballot ``ballot``.

    Ballots are globally unique per proposer (``round * n_replicas +
    node_index + 1``) and strictly positive; 0 is the "empty" ballot.
    """

    kind: ClassVar[str] = "paxos/prepare"

    ballot: int


@dataclass(frozen=True, slots=True)
class PrepareReply(Message):
    """Acceptor's answer to :class:`PrepareRequest`.

    Attributes:
        ballot: the prepare ballot this answers (echoed for matching).
        promised: True if the acceptor promised the ballot; False is an
            explicit reject (a higher ballot was already promised).
        accepted_ballot: ballot of the acceptor's unexpired accepted
            lease, or 0 if none.
        accepted_holder: holder of that accepted lease, or None.
        accepted_expires_in: *remaining* validity of the accepted lease on
            the acceptor's clock at reply time — a duration, never an
            instant, so clocks need not be synchronized (§5 discipline).
        ever_accepted: True if this acceptor has accepted *any* lease in
            its lifetime, even an expired one.  A prepare majority of
            never-accepted acceptors proves the group never had a master
            (the restart rule keeps amnesiac acceptors silent until any
            forgotten history is moot), letting a cold-start election
            skip the handoff wait-out.
    """

    kind: ClassVar[str] = "paxos/prepare"

    ballot: int
    promised: bool
    accepted_ballot: int = 0
    accepted_holder: str | None = None
    accepted_expires_in: float = 0.0
    ever_accepted: bool = False


@dataclass(frozen=True, slots=True)
class ProposeRequest(Message):
    """PaxosLease phase 2: ask acceptors to accept ``holder``'s master
    lease of duration ``term`` under ``ballot``."""

    kind: ClassVar[str] = "paxos/propose"

    ballot: int
    holder: str
    term: float


@dataclass(frozen=True, slots=True)
class ProposeReply(Message):
    """Acceptor's answer to :class:`ProposeRequest`."""

    kind: ClassVar[str] = "paxos/propose"

    ballot: int
    accepted: bool


@dataclass(frozen=True, slots=True)
class NotMaster(Message):
    """A non-master replica's redirect for a client request.

    Attributes:
        req_id: the redirected request's id (so the client can match it
            to an outstanding request), or 0 for id-less messages.
        master: the replica this node believes is master, or ``""`` when
            it does not know (election in progress) — the client then
            tries the next replica in its list.
    """

    kind: ClassVar[str] = "lease/notmaster"

    req_id: int
    master: str = ""


# -- pipelining (batched frames; memproxy-style client pipeline) --


@dataclass(frozen=True, slots=True)
class BatchRequest(Message):
    """Several client requests coalesced into one frame.

    The pipeline layer buffers every request a client issues within one
    event-loop tick (or one simulated instant) and ships them as a single
    batch, generalizing §3.1's batched lease extensions to *all* request
    traffic.  Each inner op keeps its own ``req_id``, so replies match up
    exactly as if the ops had been sent individually; the batch itself
    adds a ``batch_id`` for tracing.  Batches never nest.
    """

    kind: ClassVar[str] = "lease/batch"

    batch_id: int
    ops: tuple[Message, ...]


@dataclass(frozen=True, slots=True)
class BatchReply(Message):
    """The immediate replies to a :class:`BatchRequest`.

    Contains one reply per inner op that the server could answer at once.
    Ops the server defers (e.g. a read parked behind a pending write) are
    answered later as ordinary unbatched messages, so ``replies`` may be
    shorter than the request's ``ops``.
    """

    kind: ClassVar[str] = "lease/batch"

    batch_id: int
    replies: tuple[Message, ...]


#: Message kind strings for traffic accounting, derived from the class
#: bodies; all lease-protocol messages share the ``lease/`` prefix so
#: experiments can separate consistency traffic with one prefix filter.
KIND_BY_TYPE: dict[str, str] = {
    cls.__name__: cls.kind
    for cls in (
        ReadRequest,
        ReadReply,
        ExtendRequest,
        ExtendReply,
        WriteRequest,
        WriteReply,
        ApprovalRequest,
        ApprovalReply,
        NamespaceRequest,
        NamespaceReply,
        InstalledAnnounce,
        RelinquishRequest,
        WriteLeaseRequest,
        WriteLeaseReply,
        RecallRequest,
        RecallReply,
        FlushRequest,
        PrepareRequest,
        PrepareReply,
        ProposeRequest,
        ProposeReply,
        NotMaster,
        BatchRequest,
        BatchReply,
    )
}
