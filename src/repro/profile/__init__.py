"""Hot-path profiling with per-subsystem attribution (``repro.profile``).

One number ("events per second") says *whether* the harness got slower;
it never says *where*.  This package wraps :mod:`cProfile` around the
pinned workloads and folds the flat function list into the subsystems a
reader of DESIGN.md already knows — kernel, network, driver, protocol,
lease, obs — so a perf regression report starts from "the kernel's share
grew from 21 % to 34 %" instead of a 300-row ``pstats`` dump.

Two entry points:

* ``python -m repro.profile`` — profile the pinned scenario mix (or the
  core storms), print the attribution table, and write both artifacts:
  ``profile.json`` (the attribution, machine-readable) and
  ``profile.pstats`` (the full :mod:`pstats` dump for drill-down with
  ``python -m pstats``).
* :mod:`repro.profile.core` — the single-run core benchmark behind
  ``benchmarks/bench_core.py`` and the committed ``BENCH_core.json``
  baseline.

Attribution is by *self time* (``tottime``): cumulative time would
charge the kernel for every callback it dispatches, making the loop look
like 100 % of the run.  Self time answers the actionable question —
which layer's own code burns the cycles.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
from dataclasses import dataclass, field
from typing import Any, Callable

#: Subsystem classification, checked in order against the profiled
#: filename; first match wins.  Fragments are matched against the path
#: normalized to forward slashes.
SUBSYSTEMS: tuple[tuple[str, tuple[str, ...]], ...] = (
    # The _hot/ fragments claim the generated twins of each hot module
    # (which may be staged outside the repo tree via REPRO_HOT_DIR, so
    # no repro/ prefix can be assumed).
    ("kernel", ("repro/sim/kernel.py", "_hot/kernel.py")),
    ("network", ("repro/sim/network.py", "repro/sim/host.py", "_hot/network.py")),
    ("driver", (
        "repro/sim/driver.py",
        "repro/sim/faults.py",
        "repro/sim/oracle.py",
        "repro/sim/timeline.py",
    )),
    ("protocol", ("repro/protocol/", "_hot/messages.py", "_hot/codec.py")),
    ("lease", ("repro/lease/", "_hot/table.py")),
    ("obs", ("repro/obs/",)),
    ("harness", ("repro/check/", "repro/parallel/", "repro/profile/")),
    ("support", (
        "repro/storage/",
        "repro/cache/",
        "repro/clock/",
        "repro/types.py",
        "repro/errors.py",
        "_hot/filecache.py",
    )),
)


#: Module-name fallback for frames with no usable filename.  mypyc
#: compiles the hot twins to C, so their functions profile like builtins
#: (pstats filename ``~``) and filename classification finds nothing;
#: the *entry name* still carries the module or native-class name
#: (``<built-in method repro._hot.kernel...>``, ``<method 'run' of
#: 'kernel.Kernel' objects>``), which these fragments recover.  First
#: match wins.
MODULE_SUBSYSTEMS: tuple[tuple[str, str], ...] = (
    ("repro._hot.kernel", "kernel"),
    ("repro.sim.kernel", "kernel"),
    ("repro._hot.network", "network"),
    ("repro.sim.network", "network"),
    ("repro._hot.table", "lease"),
    ("repro.lease.table", "lease"),
    ("repro._hot.filecache", "support"),
    ("repro.cache.filecache", "support"),
    ("repro._hot.messages", "protocol"),
    ("repro.protocol.messages", "protocol"),
    ("repro._hot.codec", "protocol"),
    ("repro.protocol.codec", "protocol"),
    # Native-class method entries name only the class, not the module.
    ("of 'kernel.Kernel'", "kernel"),
    ("of 'kernel.EventHandle'", "kernel"),
    ("of 'network.Network'", "network"),
    ("of 'network.MessageStats'", "network"),
    ("of 'table.LeaseTable'", "lease"),
    ("of 'table.PendingWrite'", "lease"),
    ("of 'filecache.FileCache'", "support"),
    ("of 'filecache.CacheEntry'", "support"),
    ("of 'filecache.CacheStats'", "support"),
    ("of 'filecache.TempFileStore'", "support"),
    # ...and some mypy/mypyc versions use the bare class name.
    ("of 'Kernel'", "kernel"),
    ("of 'EventHandle'", "kernel"),
    ("of 'Network'", "network"),
    ("of 'MessageStats'", "network"),
    ("of 'LeaseTable'", "lease"),
    ("of 'PendingWrite'", "lease"),
    ("of 'FileCache'", "support"),
    ("of 'CacheEntry'", "support"),
    ("of 'TempFileStore'", "support"),
)


def classify(filename: str) -> str:
    """Map a profiled code object's filename onto a subsystem label.

    Anything outside the repo (stdlib frames, builtins — pstats reports
    those with ``~`` as the filename) lands in ``builtin``; repo files
    not claimed by :data:`SUBSYSTEMS` land in ``other``.
    """
    path = filename.replace("\\", "/")
    for name, fragments in SUBSYSTEMS:
        for fragment in fragments:
            if fragment in path:
                return name
    if "repro/" in path:
        return "other"
    return "builtin"


def classify_entry(filename: str, name: str) -> str:
    """Classify one profiled entry, falling back to its name.

    Like :func:`classify`, but a frame the filename cannot place (a
    mypyc-compiled hot function, reported builtin-style) is recovered
    from the function/method *name* via :data:`MODULE_SUBSYSTEMS` before
    landing in ``builtin``.
    """
    sub = classify(filename)
    if sub != "builtin":
        return sub
    for fragment, label in MODULE_SUBSYSTEMS:
        if fragment in name:
            return label
    return "builtin"


@dataclass
class ProfileReport:
    """One profiled run, reduced to per-subsystem shares.

    Attributes:
        label: workload name (e.g. ``"scenario_mix"``).
        total_tottime: summed self time across every profiled function.
        subsystems: per-subsystem ``{"tottime", "calls", "share"}``,
            sorted by descending self time.
        top_functions: the heaviest individual functions, each with its
            subsystem tag — the drill-down from table to line number.
        stats: the live :class:`pstats.Stats` (not serialized).
    """

    label: str
    total_tottime: float
    subsystems: dict[str, dict[str, float]]
    top_functions: list[dict[str, Any]]
    stats: pstats.Stats = field(repr=False)

    def to_dict(self) -> dict:
        """The JSON-artifact form (everything except the live stats)."""
        import repro

        return {
            "label": self.label,
            "build": repro.build_info(),
            "total_tottime": self.total_tottime,
            "subsystems": self.subsystems,
            "top_functions": self.top_functions,
        }

    def dump(self, out_dir: str, stem: str = "profile") -> tuple[str, str]:
        """Write ``<stem>.json`` and ``<stem>.pstats`` under ``out_dir``.

        Returns the two paths (json_path, pstats_path).
        """
        os.makedirs(out_dir, exist_ok=True)
        json_path = os.path.join(out_dir, f"{stem}.json")
        pstats_path = os.path.join(out_dir, f"{stem}.pstats")
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        self.stats.dump_stats(pstats_path)
        return json_path, pstats_path

    def table(self) -> str:
        """The attribution as an aligned human-readable table."""
        lines = [f"{'subsystem':<10} {'self s':>8} {'share':>7} {'calls':>10}"]
        for name, row in self.subsystems.items():
            lines.append(
                f"{name:<10} {row['tottime']:>8.3f} {row['share']:>6.1%}"
                f" {int(row['calls']):>10}"
            )
        lines.append(f"{'total':<10} {self.total_tottime:>8.3f}")
        return "\n".join(lines)


def attribute(stats: pstats.Stats, label: str, top: int = 15) -> ProfileReport:
    """Fold a :class:`pstats.Stats` into a :class:`ProfileReport`."""
    per_sub: dict[str, dict[str, float]] = {}
    rows = []
    total = 0.0
    for (filename, line, name), (cc, nc, tt, ct, callers) in stats.stats.items():
        sub = classify_entry(filename, name)
        bucket = per_sub.setdefault(sub, {"tottime": 0.0, "calls": 0.0})
        bucket["tottime"] += tt
        bucket["calls"] += nc
        total += tt
        rows.append((tt, nc, sub, filename, line, name))
    for bucket in per_sub.values():
        bucket["share"] = bucket["tottime"] / total if total else 0.0
    ordered = dict(
        sorted(per_sub.items(), key=lambda kv: kv[1]["tottime"], reverse=True)
    )
    rows.sort(reverse=True)
    top_functions = [
        {
            "tottime": tt,
            "calls": nc,
            "subsystem": sub,
            "where": f"{filename}:{line}:{name}",
        }
        for tt, nc, sub, filename, line, name in rows[:top]
    ]
    return ProfileReport(
        label=label,
        total_tottime=total,
        subsystems=ordered,
        top_functions=top_functions,
        stats=stats,
    )


def compare_reports(before: dict, after: dict) -> str:
    """Diff two ``profile.json`` attribution tables (before -> after).

    Returns an aligned table of per-subsystem self time and share for
    both runs with absolute deltas, sorted by the magnitude of the
    self-time change — the before/after report for a perf PR, including
    pure-vs-compiled comparisons (each run's build is shown when the
    artifacts recorded one).
    """
    lines = []
    before_build = (before.get("build") or {}).get("build")
    after_build = (after.get("build") or {}).get("build")
    lines.append(
        f"before: {before.get('label', '?')}"
        + (f" [{before_build}]" if before_build else "")
        + f"  total {before.get('total_tottime', 0.0):.3f}s"
    )
    lines.append(
        f"after:  {after.get('label', '?')}"
        + (f" [{after_build}]" if after_build else "")
        + f"  total {after.get('total_tottime', 0.0):.3f}s"
    )
    a_subs: dict = before.get("subsystems", {})
    b_subs: dict = after.get("subsystems", {})
    names = sorted(
        set(a_subs) | set(b_subs),
        key=lambda n: abs(
            b_subs.get(n, {}).get("tottime", 0.0) - a_subs.get(n, {}).get("tottime", 0.0)
        ),
        reverse=True,
    )
    lines.append(
        f"{'subsystem':<10} {'before s':>9} {'after s':>9} {'delta s':>9}"
        f" {'before':>7} {'after':>7} {'dshare':>7}"
    )
    for name in names:
        a = a_subs.get(name, {})
        b = b_subs.get(name, {})
        at, bt = a.get("tottime", 0.0), b.get("tottime", 0.0)
        ash, bsh = a.get("share", 0.0), b.get("share", 0.0)
        lines.append(
            f"{name:<10} {at:>9.3f} {bt:>9.3f} {bt - at:>+9.3f}"
            f" {ash:>6.1%} {bsh:>6.1%} {bsh - ash:>+6.1%}"
        )
    return "\n".join(lines)


def profile_run(
    workload: Callable[[], Any], label: str, top: int = 15
) -> ProfileReport:
    """Run ``workload()`` under :mod:`cProfile` and attribute the result.

    Note the observer effect: cProfile adds per-call overhead (roughly
    3× wall time on this codebase's call-dense hot paths), inflating the
    apparent weight of call-heavy layers relative to loop-heavy ones.
    Shares are for *steering*; the committed throughput numbers come
    from the unprofiled ``benchmarks/bench_core.py``.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        workload()
    finally:
        profiler.disable()
    return attribute(pstats.Stats(profiler), label, top=top)
