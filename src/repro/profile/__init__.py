"""Hot-path profiling with per-subsystem attribution (``repro.profile``).

One number ("events per second") says *whether* the harness got slower;
it never says *where*.  This package wraps :mod:`cProfile` around the
pinned workloads and folds the flat function list into the subsystems a
reader of DESIGN.md already knows — kernel, network, driver, protocol,
lease, obs — so a perf regression report starts from "the kernel's share
grew from 21 % to 34 %" instead of a 300-row ``pstats`` dump.

Two entry points:

* ``python -m repro.profile`` — profile the pinned scenario mix (or the
  core storms), print the attribution table, and write both artifacts:
  ``profile.json`` (the attribution, machine-readable) and
  ``profile.pstats`` (the full :mod:`pstats` dump for drill-down with
  ``python -m pstats``).
* :mod:`repro.profile.core` — the single-run core benchmark behind
  ``benchmarks/bench_core.py`` and the committed ``BENCH_core.json``
  baseline.

Attribution is by *self time* (``tottime``): cumulative time would
charge the kernel for every callback it dispatches, making the loop look
like 100 % of the run.  Self time answers the actionable question —
which layer's own code burns the cycles.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
from dataclasses import dataclass, field
from typing import Any, Callable

#: Subsystem classification, checked in order against the profiled
#: filename; first match wins.  Fragments are matched against the path
#: normalized to forward slashes.
SUBSYSTEMS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("kernel", ("repro/sim/kernel.py",)),
    ("network", ("repro/sim/network.py", "repro/sim/host.py")),
    ("driver", (
        "repro/sim/driver.py",
        "repro/sim/faults.py",
        "repro/sim/oracle.py",
        "repro/sim/timeline.py",
    )),
    ("protocol", ("repro/protocol/",)),
    ("lease", ("repro/lease/",)),
    ("obs", ("repro/obs/",)),
    ("harness", ("repro/check/", "repro/parallel/", "repro/profile/")),
    ("support", (
        "repro/storage/",
        "repro/cache/",
        "repro/clock/",
        "repro/types.py",
        "repro/errors.py",
    )),
)


def classify(filename: str) -> str:
    """Map a profiled code object's filename onto a subsystem label.

    Anything outside the repo (stdlib frames, builtins — pstats reports
    those with ``~`` as the filename) lands in ``builtin``; repo files
    not claimed by :data:`SUBSYSTEMS` land in ``other``.
    """
    path = filename.replace("\\", "/")
    for name, fragments in SUBSYSTEMS:
        for fragment in fragments:
            if fragment in path:
                return name
    if "repro/" in path:
        return "other"
    return "builtin"


@dataclass
class ProfileReport:
    """One profiled run, reduced to per-subsystem shares.

    Attributes:
        label: workload name (e.g. ``"scenario_mix"``).
        total_tottime: summed self time across every profiled function.
        subsystems: per-subsystem ``{"tottime", "calls", "share"}``,
            sorted by descending self time.
        top_functions: the heaviest individual functions, each with its
            subsystem tag — the drill-down from table to line number.
        stats: the live :class:`pstats.Stats` (not serialized).
    """

    label: str
    total_tottime: float
    subsystems: dict[str, dict[str, float]]
    top_functions: list[dict[str, Any]]
    stats: pstats.Stats = field(repr=False)

    def to_dict(self) -> dict:
        """The JSON-artifact form (everything except the live stats)."""
        return {
            "label": self.label,
            "total_tottime": self.total_tottime,
            "subsystems": self.subsystems,
            "top_functions": self.top_functions,
        }

    def dump(self, out_dir: str, stem: str = "profile") -> tuple[str, str]:
        """Write ``<stem>.json`` and ``<stem>.pstats`` under ``out_dir``.

        Returns the two paths (json_path, pstats_path).
        """
        os.makedirs(out_dir, exist_ok=True)
        json_path = os.path.join(out_dir, f"{stem}.json")
        pstats_path = os.path.join(out_dir, f"{stem}.pstats")
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        self.stats.dump_stats(pstats_path)
        return json_path, pstats_path

    def table(self) -> str:
        """The attribution as an aligned human-readable table."""
        lines = [f"{'subsystem':<10} {'self s':>8} {'share':>7} {'calls':>10}"]
        for name, row in self.subsystems.items():
            lines.append(
                f"{name:<10} {row['tottime']:>8.3f} {row['share']:>6.1%}"
                f" {int(row['calls']):>10}"
            )
        lines.append(f"{'total':<10} {self.total_tottime:>8.3f}")
        return "\n".join(lines)


def attribute(stats: pstats.Stats, label: str, top: int = 15) -> ProfileReport:
    """Fold a :class:`pstats.Stats` into a :class:`ProfileReport`."""
    per_sub: dict[str, dict[str, float]] = {}
    rows = []
    total = 0.0
    for (filename, line, name), (cc, nc, tt, ct, callers) in stats.stats.items():
        sub = classify(filename)
        bucket = per_sub.setdefault(sub, {"tottime": 0.0, "calls": 0.0})
        bucket["tottime"] += tt
        bucket["calls"] += nc
        total += tt
        rows.append((tt, nc, sub, filename, line, name))
    for bucket in per_sub.values():
        bucket["share"] = bucket["tottime"] / total if total else 0.0
    ordered = dict(
        sorted(per_sub.items(), key=lambda kv: kv[1]["tottime"], reverse=True)
    )
    rows.sort(reverse=True)
    top_functions = [
        {
            "tottime": tt,
            "calls": nc,
            "subsystem": sub,
            "where": f"{filename}:{line}:{name}",
        }
        for tt, nc, sub, filename, line, name in rows[:top]
    ]
    return ProfileReport(
        label=label,
        total_tottime=total,
        subsystems=ordered,
        top_functions=top_functions,
        stats=stats,
    )


def profile_run(
    workload: Callable[[], Any], label: str, top: int = 15
) -> ProfileReport:
    """Run ``workload()`` under :mod:`cProfile` and attribute the result.

    Note the observer effect: cProfile adds per-call overhead (roughly
    3× wall time on this codebase's call-dense hot paths), inflating the
    apparent weight of call-heavy layers relative to loop-heavy ones.
    Shares are for *steering*; the committed throughput numbers come
    from the unprofiled ``benchmarks/bench_core.py``.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        workload()
    finally:
        profiler.disable()
    return attribute(pstats.Stats(profiler), label, top=top)
