"""Single-run core benchmark; emits and gates ``BENCH_core.json``.

``BENCH_sweep.json`` tracks the *sweep executor* (many scenarios, worker
pools).  This benchmark tracks the **single-run hot path** the PR-4 work
optimized, with two pinned workloads:

* ``core`` — synthetic storms that spend nearly all their time in the
  kernel and network layers: a lease-renewal timer churn (arm, cancel,
  re-arm — the wheel's worst customer) and a request/response ping-pong
  through the simulated network.  Both use only the API surface that
  predates the fast paths (``schedule``/``cancel``/``unicast``), so the
  same workload runs unchanged against any revision.
* ``scenario`` — the same 32-scenario pinned smoke mix as the sweep
  benchmark, run serially: the end-to-end number, diluted by the driver
  and oracle layers the hot-path work deliberately left alone.

Both workloads are deterministic: the gate checks the exact event counts
against the baseline before comparing throughput, so a semantic change
cannot masquerade as a perf swing.

Usage (also via ``benchmarks/bench_core.py``)::

    PYTHONPATH=src python -m repro.profile.core            # measure
    PYTHONPATH=src python -m repro.profile.core --check    # CI gate
    PYTHONPATH=src python -m repro.profile.core --pin      # re-pin
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.parallel.baseline import (
    PINNED_BASE_SEED,
    PINNED_JOBS,
    BaselineComparison,
    bench_job,
    build_block,
    build_drift,
    load_report,
    machine_block,
    machine_drift,
    pinned_mix_sha,
    save_report,
)
from repro.sim.host import Host
from repro.sim.kernel import Kernel
from repro.sim.network import Network, NetworkParams

#: Allowed fractional events/sec drop before the gate fails.  Wider than
#: the sweep gate's 25 %: single-run numbers see more scheduler noise
#: than a 32-job aggregate.
TOLERANCE = 0.30

#: Committed baseline path (repository root).
BASELINE_PATH = "BENCH_core.json"

#: Timed passes per workload; the best is reported.  Best-of damps
#: box-load noise without the bias of averaging in a cold pass.
TRIALS = 5


def timer_storm(lines: int = 64, renewals: int = 400) -> int:
    """Lease-renewal churn: per line, arm a long expiry timer, then
    repeatedly cancel and re-arm it from a short-period renewal timer.

    This is the kernel's worst-case customer (the write-up in DESIGN.md
    §10): every renewal inserts twice and cancels once, so cancelled
    entries pile up and force periodic compaction, while the short
    timers hammer the draining bucket and the long ones the future
    slots.  Returns the kernel's executed-event count.
    """
    kernel = Kernel(seed=11)

    def renew(line: int, left: int, armed: list) -> None:
        if armed[0] is not None:
            armed[0].cancel()
        if left:
            armed[0] = kernel.schedule(30.0, expire, line)
            kernel.schedule(0.25 + (line % 7) * 0.01, renew, line, left - 1, armed)

    def expire(line: int) -> None:
        pass

    for line in range(lines):
        kernel.schedule((line % 13) * 0.003, renew, line, renewals, [None])
    kernel.run()
    return kernel.executed


def ping_storm(clients: int = 48, rounds: int = 300) -> int:
    """Request/response ping-pong through the simulated network.

    Every leg pays the paper's full timing model (send m_proc, m_prop,
    receive m_proc) with zero loss, so each one qualifies for the
    fault-free delivery fast path.  Returns the executed-event count.
    """
    kernel = Kernel(seed=13)
    net = Network(kernel, NetworkParams())
    server = Host("server", kernel)
    net.attach(server)
    remaining: dict[str, int] = {}

    def server_handler(payload, src):
        net.unicast("server", src, payload + 1, kind="pong")

    server.set_handler(server_handler)

    def attach_client(name: str) -> None:
        host = Host(name, kernel)
        net.attach(host)

        def handler(payload, src):
            if remaining[name]:
                remaining[name] -= 1
                net.unicast(name, "server", payload, kind="ping")

        host.set_handler(handler)

    for i in range(clients):
        name = f"c{i}"
        remaining[name] = rounds
        attach_client(name)
        kernel.schedule(0.001 * i, net.unicast, name, "server", 0, "ping")
    kernel.run()
    return kernel.executed


def core_workload() -> int:
    """The gated core workload: both storms; returns total events."""
    return timer_storm() + ping_storm()


def scenario_workload(jobs: int = PINNED_JOBS) -> int:
    """The pinned smoke mix, serial; returns total events."""
    return sum(bench_job(index)["events"] for index in range(jobs))


def _best_of(workload, trials: int) -> tuple[int, float]:
    """Run ``workload`` ``trials`` times; return (events, best wall_s).

    Event counts must agree across trials — these are deterministic
    simulations, and a drifting count means the harness is broken.
    """
    events = None
    best = float("inf")
    for _ in range(trials):
        start = time.perf_counter()
        got = workload()
        wall = time.perf_counter() - start
        if events is None:
            events = got
        elif got != events:
            raise RuntimeError(
                f"non-deterministic workload: {events} then {got} events"
            )
        best = min(best, wall)
    return events, best


def run_benchmark(jobs: int = PINNED_JOBS, trials: int = TRIALS) -> dict:
    """Measure both workloads; return the ``BENCH_core.json`` report.

    Schema::

        {
          "benchmark": "core_hot_path",
          "job_mix":  {"base_seed", "jobs", "mode", "mix_sha"},
          "workers":  1,                     # single-run by definition
          "workloads": {
            "core":     {"events", "wall_s", "events_per_sec"},
            "scenario": {"events", "wall_s", "events_per_sec"}
          },
          "machine":  {"cpus", "python", "platform"}   # informational
        }

    The ``job_mix`` and ``machine`` blocks match ``BENCH_sweep.json``
    (same helpers), so the two baselines stay comparable side by side.
    """
    # Untimed warmup (imports, allocator growth), as in the sweep bench.
    core_workload()
    bench_job(0)

    report: dict = {
        "benchmark": "core_hot_path",
        "job_mix": {
            "base_seed": PINNED_BASE_SEED,
            "jobs": jobs,
            "mode": "smoke",
            "mix_sha": pinned_mix_sha(jobs),
        },
        "workers": 1,
        "workloads": {},
        "machine": machine_block(),
        "build": build_block(),
    }
    for name, workload in (
        ("core", core_workload),
        ("scenario", lambda: scenario_workload(jobs)),
    ):
        events, wall = _best_of(workload, trials)
        report["workloads"][name] = {
            "events": events,
            "wall_s": wall,
            "events_per_sec": events / wall,
        }
    return report


def compare(
    current: dict, baseline: dict, tolerance: float = TOLERANCE
) -> BaselineComparison:
    """Gate a fresh report against the committed ``BENCH_core.json``.

    Fails when the job mix changed (stale baseline — re-pin), when a
    workload's event count differs from the baseline's (the workloads
    are deterministic; a count change is a semantic change), or when a
    workload's events/sec dropped more than ``tolerance``.  Throughput
    drops are demoted to warnings when the ``machine`` block differs
    from the baseline's (see
    :func:`repro.parallel.baseline.machine_drift`) or when the hot-core
    build differs (:func:`repro.parallel.baseline.build_drift` — a
    compiled run is never gated against a pure pin); the event-count and
    mix checks still fail hard, since the equivalence contract makes
    counts byte-identical across builds.
    """
    verdict = BaselineComparison()
    drift = machine_drift(current, baseline)
    if drift:
        verdict.warn(
            f"{drift}: throughput deltas are suspect until the baseline is "
            "re-pinned on this runner with `python benchmarks/bench_core.py "
            "--pin`"
        )
    bdrift = build_drift(current, baseline)
    if bdrift:
        verdict.warn(
            f"{bdrift}: a compiled run is never gated against a pure pin "
            "(nor the reverse); compare like-for-like or re-pin with the "
            "matching build"
        )
        drift = drift or bdrift
    if current.get("job_mix") != baseline.get("job_mix"):
        verdict.fail(
            f"job mix changed (baseline {baseline.get('job_mix')}, "
            f"current {current.get('job_mix')}): re-pin with "
            "`python benchmarks/bench_core.py --pin`"
        )
        return verdict
    for name, now in current.get("workloads", {}).items():
        then = baseline.get("workloads", {}).get(name)
        if then is None:
            verdict.fail(f"workload {name!r} missing from baseline: re-pin")
            continue
        if now["events"] != then["events"]:
            verdict.fail(
                f"{name} event count changed ({then['events']} -> "
                f"{now['events']}): deterministic workload diverged"
            )
            continue
        ratio = now["events_per_sec"] / then["events_per_sec"]
        verdict.ratios[name] = ratio
        if ratio < 1.0 - tolerance:
            message = (
                f"{name} events/sec regressed {100 * (1 - ratio):.1f}% "
                f"({then['events_per_sec']:.0f} -> "
                f"{now['events_per_sec']:.0f}, "
                f"tolerance {100 * tolerance:.0f}%)"
            )
            if drift:
                verdict.warn(f"{message} — on a drifted machine; re-pin")
            else:
                verdict.fail(message)
    return verdict


def main(argv: list[str] | None = None) -> int:
    """CLI driver; exit 0 on success, 1 on gate failure, 2 on usage."""
    parser = argparse.ArgumentParser(
        prog="bench_core",
        description="Single-run core hot-path benchmark: kernel/network "
        "storm and serial scenario-mix events/sec, with a baseline gate.",
    )
    parser.add_argument("--jobs", type=int, default=PINNED_JOBS,
                        help="scenario-mix size (gate requires the default)")
    parser.add_argument("--trials", type=int, default=TRIALS,
                        help=f"timed passes per workload (default {TRIALS})")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the fresh report here")
    parser.add_argument("--baseline", default=BASELINE_PATH, metavar="PATH",
                        help=f"committed baseline (default {BASELINE_PATH})")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit 1 on "
                        f">{100 * TOLERANCE:.0f}%% events/sec regression")
    parser.add_argument("--pin", action="store_true",
                        help="write the fresh report over the baseline "
                        "(commit the result)")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed fractional events/sec drop for --check")
    parser.add_argument("--speedup-vs", default=None, metavar="PATH",
                        help="reference report (e.g. a pure-path --out run): "
                        "require this run's core events/sec to be at least "
                        "--min-speedup times the reference's")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required core speedup for --speedup-vs "
                        "(default 2.0)")
    args = parser.parse_args(argv)

    report = run_benchmark(jobs=args.jobs, trials=args.trials)
    print(json.dumps(report, indent=2, sort_keys=True))

    if args.out:
        save_report(report, args.out)
    if args.pin:
        save_report(report, args.baseline)
        print(f"baseline pinned -> {args.baseline}", file=sys.stderr)
    if args.check:
        if not os.path.exists(args.baseline):
            print(f"no baseline at {args.baseline}; pin one with --pin",
                  file=sys.stderr)
            return 2
        verdict = compare(report, load_report(args.baseline),
                          tolerance=args.tolerance)
        for name, ratio in sorted(verdict.ratios.items()):
            print(f"{name}: {100 * ratio:.1f}% of baseline events/sec",
                  file=sys.stderr)
        for line in verdict.warnings:
            print(f"PERF GATE WARN: {line}", file=sys.stderr)
        if not verdict.ok:
            for line in verdict.regressions:
                print(f"PERF GATE FAIL: {line}", file=sys.stderr)
            return 1
        print("perf gate ok", file=sys.stderr)
    if args.speedup_vs:
        reference = load_report(args.speedup_vs)
        ref = reference["workloads"]["core"]["events_per_sec"]
        cur = report["workloads"]["core"]["events_per_sec"]
        speedup = cur / ref
        ref_build = (reference.get("build") or {}).get("build", "pure")
        cur_build = (report.get("build") or {}).get("build", "pure")
        print(
            f"core speedup vs {args.speedup_vs} "
            f"({ref_build} -> {cur_build}): {speedup:.2f}x",
            file=sys.stderr,
        )
        if speedup < args.min_speedup:
            print(
                f"SPEEDUP GATE FAIL: {speedup:.2f}x < required "
                f"{args.min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
