"""CLI: profile a pinned workload and attribute time per subsystem.

Usage::

    PYTHONPATH=src python -m repro.profile                     # scenario mix
    PYTHONPATH=src python -m repro.profile --workload core     # kernel storms
    PYTHONPATH=src python -m repro.profile --out-dir profile_out

Writes ``profile.json`` (per-subsystem attribution) and
``profile.pstats`` (full dump; open with ``python -m pstats``) into
``--out-dir``, and prints the attribution table plus the heaviest
individual functions.

``--compare a.json b.json`` instead diffs two previously written
attribution artifacts (before -> after) and prints the per-subsystem
delta table — the before/after evidence for a perf change, including
pure-vs-compiled runs.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.profile import compare_reports, profile_run
from repro.profile.core import core_workload, scenario_workload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profile",
        description="cProfile a pinned workload with per-subsystem "
        "(kernel/network/driver/protocol/lease/obs) attribution.",
    )
    parser.add_argument("--workload", choices=("scenarios", "core"),
                        default="scenarios",
                        help="scenarios: pinned smoke mix end to end; "
                        "core: kernel/network storms (default: scenarios)")
    parser.add_argument("--jobs", type=int, default=8,
                        help="scenario count for --workload scenarios "
                        "(default 8; profiling is ~3x slower than real)")
    parser.add_argument("--top", type=int, default=15,
                        help="individual functions to list (default 15)")
    parser.add_argument("--out-dir", default="profile_out", metavar="DIR",
                        help="artifact directory (default profile_out)")
    parser.add_argument("--compare", nargs=2, metavar=("BEFORE", "AFTER"),
                        help="diff two profile.json artifacts instead of "
                        "profiling (before after)")
    args = parser.parse_args(argv)

    if args.compare:
        before_path, after_path = args.compare
        with open(before_path, encoding="utf-8") as fh:
            before = json.load(fh)
        with open(after_path, encoding="utf-8") as fh:
            after = json.load(fh)
        print(compare_reports(before, after))
        return 0

    if args.workload == "core":
        label, workload = "core_storms", core_workload
    else:
        label = f"scenario_mix[{args.jobs}]"
        workload = lambda: scenario_workload(args.jobs)  # noqa: E731

    report = profile_run(workload, label, top=args.top)
    json_path, pstats_path = report.dump(args.out_dir)

    print(f"workload: {label}")
    print(report.table())
    print("\nheaviest functions:")
    for row in report.top_functions:
        print(f"  {row['tottime']:7.3f}s {row['subsystem']:<9} {row['where']}")
    print(f"\nartifacts: {json_path}, {pstats_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
