"""Parallel sweep execution (`repro.parallel`).

The multiprocessing layer that turns the harness's bags of independent,
deterministic simulations — scenario sweeps, experiment grids, benchmark
mixes — into multi-core work with serially-identical output.

Public surface:

* :class:`~repro.parallel.pool.SweepPool` — chunked, crash-isolated,
  warm-worker executor with a deterministic in-order merge;
* :func:`~repro.parallel.pool.resolve_workers` — ``--workers N|auto``
  spec resolution;
* :mod:`repro.parallel.baseline` — the pinned sweep benchmark and the
  baseline comparison the CI perf gate consumes;
* :class:`~repro.parallel.pool.SweepError` /
  :class:`~repro.parallel.pool.SweepJobError` /
  :class:`~repro.parallel.pool.WorkerCrashError` — sweep-level failures
  (distinct from scenario *verdicts*, which are results, not errors).
"""

from repro.parallel.pool import (
    SweepError,
    SweepJobError,
    SweepPool,
    WorkerCrashError,
    resolve_workers,
)

__all__ = [
    "SweepError",
    "SweepJobError",
    "SweepPool",
    "WorkerCrashError",
    "resolve_workers",
]
