"""Pinned sweep benchmark and baseline comparison — the CI perf gate.

The perf trajectory of the harness is tracked with one number: **events
per second** — simulation-kernel events executed per wall-clock second
over a *pinned job mix* (a fixed set of generated scenarios, so every
run measures the same work).  ``benchmarks/bench_sweep.py`` runs the mix
serially and through a :class:`~repro.parallel.pool.SweepPool`, emits
``BENCH_sweep.json``, and CI compares it against the committed baseline
at the repository root: a drop of more than :data:`TOLERANCE` in
events/sec (serial *or* parallel) fails the build.

Re-pinning: after an intentional perf change (or a runner-hardware
change), regenerate the committed baseline with::

    python benchmarks/bench_sweep.py --pin

and commit the updated ``BENCH_sweep.json`` alongside the change that
justified it.  The comparison also re-checks the parallel executor's
determinism contract — serial and parallel runs of the mix must produce
identical per-scenario oracle fingerprints — so the perf gate doubles as
an end-to-end equivalence check on every push.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field

from repro.check.generator import GeneratorConfig, ScenarioGenerator
from repro.check.runner import run_scenario
from repro.parallel.pool import SweepPool, resolve_workers

#: Seed namespace of the pinned mix (the paper's publication year).
PINNED_BASE_SEED = 1989

#: Scenarios in the pinned mix — enough work (~3 s serial on one
#: 2020s core) that multiprocessing overhead is amortized, small enough
#: for a per-push CI job.
PINNED_JOBS = 32

#: Allowed fractional drop in events/sec before the gate fails.
TOLERANCE = 0.25

#: Default artifact path (committed at the repository root).
BASELINE_PATH = "BENCH_sweep.json"


def machine_block() -> dict:
    """The informational ``machine`` metadata block shared by every
    committed benchmark baseline (``BENCH_sweep.json``,
    ``BENCH_core.json``).  Excluded from gate comparisons; it exists so a
    human reading a regression can spot a runner change at a glance."""
    return {
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def build_block() -> dict:
    """The ``build`` metadata block: which hot-core implementation ran.

    Recorded by every benchmark report so the gates compare like for
    like — a compiled run is never judged against a pure pin (or vice
    versa); see :func:`build_drift`.
    """
    import repro

    return {"build": repro.build_info()["build"]}


def build_drift(current: dict, baseline: dict) -> str | None:
    """Describe a hot-core build mismatch, or ``None`` when comparable.

    Mirrors :func:`machine_drift`: a pure-python run gated against a
    baseline pinned from a compiled build (or vice versa) would report a
    phantom regression of the whole compilation speedup, so throughput
    deltas across a build mismatch are demoted to warnings.  Semantic
    checks (event counts, determinism, job mix) are byte-identical
    across builds by the equivalence contract and still fail hard.
    Baselines predating the ``build`` block compare as pure.
    """
    cur = (current.get("build") or {}).get("build", "pure")
    base = (baseline.get("build") or {}).get("build", "pure")
    if cur == base:
        return None
    return f"hot-core build drifted (baseline {base!r}, current {cur!r})"


def pinned_mix_sha(
    jobs: int = PINNED_JOBS,
    base_seed: int = PINNED_BASE_SEED,
    config: GeneratorConfig | None = None,
) -> str:
    """SHA-256 over the pinned mix's scenario digests.

    Committed inside each baseline's ``job_mix`` block: a generator or
    grammar change silently altering the workload shows up as a mix-hash
    mismatch (stale baseline, re-pin) instead of a phantom perf swing.
    """
    generator = ScenarioGenerator(base_seed, config or GeneratorConfig.smoke())
    acc = hashlib.sha256()
    for index in range(jobs):
        acc.update(generator.generate(index).digest().encode())
    return acc.hexdigest()


def bench_job(index: int) -> dict:
    """Run pinned scenario ``index``; return its work counters.

    The mix uses the smoke grammar without clock faults, so every
    scenario also doubles as a correctness probe: a non-``pass`` verdict
    here means the protocol or harness regressed, and the benchmark
    refuses to produce a number for broken work.
    """
    generator = ScenarioGenerator(PINNED_BASE_SEED, GeneratorConfig.smoke())
    result = run_scenario(generator.generate(index))
    if result.verdict != "pass":
        raise RuntimeError(
            f"pinned scenario {index} verdict={result.verdict}: "
            "refusing to benchmark a failing protocol"
        )
    return {
        "events": result.events_executed,
        "ops": result.ops_submitted,
        "reads": result.reads_checked,
        "fingerprint": result.fingerprint,
    }


def run_benchmark(
    workers: int | str | None = "auto", jobs: int = PINNED_JOBS
) -> dict:
    """Run the pinned mix serially and in parallel; return the report.

    The report is the ``BENCH_sweep.json`` schema::

        {
          "benchmark": "pinned_sweep",
          "job_mix":  {"base_seed", "jobs", "mode"},
          "events":   total kernel events executed by the mix,
          "deterministic": serial and parallel fingerprints identical,
          "serial":   {"wall_s", "events_per_sec"},
          "parallel": {"workers", "wall_s", "events_per_sec", "speedup"},
          "machine":  {"cpus", "python", "platform"}   # informational
        }

    The ``machine`` block is excluded from gate comparisons; it exists
    so a human reading a regression can spot a runner change at a
    glance.
    """
    workers = resolve_workers(workers)

    # Untimed warmup: pay one-time costs (lazy imports, allocator growth)
    # before either leg so serial-vs-parallel is an apples comparison.
    bench_job(0)

    start = time.perf_counter()
    serial_results = [bench_job(i) for i in range(jobs)]
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    with SweepPool(bench_job, workers=workers) as pool:
        parallel_results = pool.map(range(jobs))
    parallel_s = time.perf_counter() - start

    events = sum(r["events"] for r in serial_results)
    deterministic = [r["fingerprint"] for r in serial_results] == [
        r["fingerprint"] for r in parallel_results
    ]
    return {
        "benchmark": "pinned_sweep",
        "job_mix": {
            "base_seed": PINNED_BASE_SEED,
            "jobs": jobs,
            "mode": "smoke",
            "mix_sha": pinned_mix_sha(jobs),
        },
        "events": events,
        "deterministic": deterministic,
        "serial": {
            "wall_s": serial_s,
            "events_per_sec": events / serial_s,
        },
        "parallel": {
            "workers": workers,
            "wall_s": parallel_s,
            "events_per_sec": events / parallel_s,
            "speedup": serial_s / parallel_s,
        },
        "machine": machine_block(),
        "build": build_block(),
    }


@dataclass
class BaselineComparison:
    """The gate's verdict on a fresh report versus the committed baseline.

    Attributes:
        ok: True when no gated metric regressed beyond tolerance.
        regressions: human-readable description of each failure.
        warnings: suspect-but-not-failing observations (e.g. the baseline
            was pinned on different hardware, so throughput deltas are
            noise until it is re-pinned).
        ratios: current/baseline events-per-sec ratio per gated metric.
    """

    ok: bool = True
    regressions: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    ratios: dict[str, float] = field(default_factory=dict)

    def fail(self, message: str) -> None:
        """Record one gate failure."""
        self.ok = False
        self.regressions.append(message)

    def warn(self, message: str) -> None:
        """Record one non-failing warning."""
        self.warnings.append(message)


def machine_drift(current: dict, baseline: dict) -> str | None:
    """Describe a machine-metadata mismatch, or ``None`` when identical.

    The ``machine`` block is informational, but when it differs from the
    baseline's, every throughput delta is suspect: the runner changed
    (kernel upgrade, different instance type), not the code.  The gates
    therefore demote throughput regressions to warnings while drifted —
    a human re-pins the baseline on the new runner to restore the hard
    gate — but semantic failures (mix mismatch, determinism, changed
    event counts) still fail: those never depend on the hardware.
    """
    cur, base = current.get("machine"), baseline.get("machine")
    if cur == base:
        return None
    return f"machine metadata drifted (baseline {base}, current {cur})"


def compare(
    current: dict, baseline: dict, tolerance: float = TOLERANCE
) -> BaselineComparison:
    """Gate a fresh benchmark report against the committed baseline.

    Fails when serial or parallel events/sec dropped by more than
    ``tolerance``, when the parallel run was not byte-deterministic, or
    when the job mixes differ (a stale baseline — re-pin it).  When the
    ``machine`` block differs from the baseline's, throughput drops are
    demoted to warnings (see :func:`machine_drift`); the semantic checks
    still fail hard.

    Args:
        current: report from :func:`run_benchmark`.
        baseline: previously committed report.
        tolerance: allowed fractional events/sec drop (default 25 %).
    """
    verdict = BaselineComparison()
    drift = machine_drift(current, baseline)
    if drift:
        verdict.warn(
            f"{drift}: throughput deltas are suspect until the baseline is "
            "re-pinned on this runner with `python benchmarks/bench_sweep.py "
            "--pin`"
        )
    bdrift = build_drift(current, baseline)
    if bdrift:
        verdict.warn(
            f"{bdrift}: a compiled run is not gated against a pure pin "
            "(nor the reverse); re-pin with the matching build to restore "
            "the hard gate"
        )
        drift = drift or bdrift
    if current.get("job_mix") != baseline.get("job_mix"):
        verdict.fail(
            f"job mix changed (baseline {baseline.get('job_mix')}, "
            f"current {current.get('job_mix')}): re-pin the baseline with "
            "`python benchmarks/bench_sweep.py --pin`"
        )
        return verdict
    if not current.get("deterministic", False):
        verdict.fail(
            "parallel sweep was not deterministic: serial and parallel "
            "fingerprints differ"
        )
    single_cpu = current.get("parallel", {}).get("workers") == 1
    for metric in ("serial", "parallel"):
        if metric == "parallel" and single_cpu:
            # A one-worker pool is serial execution plus pool overhead:
            # "speedup" is pure noise on a single-cpu runner, so the
            # expectation is skipped — visibly, not silently.
            verdict.warn(
                "parallel events/sec check skipped: workers == 1 (single-cpu "
                "runner), so parallel throughput measures pool overhead, not "
                "speedup"
            )
            continue
        now = current[metric]["events_per_sec"]
        then = baseline[metric]["events_per_sec"]
        ratio = now / then
        verdict.ratios[metric] = ratio
        if ratio < 1.0 - tolerance:
            message = (
                f"{metric} events/sec regressed {100 * (1 - ratio):.1f}% "
                f"({then:.0f} -> {now:.0f}, tolerance {100 * tolerance:.0f}%)"
            )
            if drift:
                verdict.warn(f"{message} — on a drifted machine; re-pin")
            else:
                verdict.fail(message)
    return verdict


def load_report(path: str) -> dict:
    """Read a benchmark report/baseline JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def save_report(report: dict, path: str) -> None:
    """Write a benchmark report with stable formatting (committable)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    """CLI driver shared by ``python -m repro.parallel.baseline`` and
    ``benchmarks/bench_sweep.py``.

    Exit status: 0 on success (and a passing gate when ``--check``),
    1 when the gate fails, 2 on usage errors (e.g. missing baseline).
    """
    parser = argparse.ArgumentParser(
        prog="bench_sweep",
        description="Pinned sweep benchmark: serial vs parallel wall-clock, "
        "events/sec, and the baseline perf gate.",
    )
    parser.add_argument("--workers", default="auto", metavar="N|auto",
                        help="parallel leg worker count (default: auto)")
    parser.add_argument("--jobs", type=int, default=PINNED_JOBS,
                        help="pinned mix size (gate requires the default)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the fresh report here")
    parser.add_argument("--baseline", default=BASELINE_PATH, metavar="PATH",
                        help=f"committed baseline (default {BASELINE_PATH})")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit 1 on "
                        f">{100 * TOLERANCE:.0f}%% events/sec regression")
    parser.add_argument("--pin", action="store_true",
                        help="write the fresh report over the baseline "
                        "(commit the result)")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help="allowed fractional events/sec drop for --check")
    args = parser.parse_args(argv)

    report = run_benchmark(workers=args.workers, jobs=args.jobs)
    print(json.dumps(report, indent=2, sort_keys=True))

    if args.out:
        save_report(report, args.out)
    if args.pin:
        save_report(report, args.baseline)
        print(f"baseline pinned -> {args.baseline}", file=sys.stderr)
    if args.check:
        if not os.path.exists(args.baseline):
            print(f"no baseline at {args.baseline}; pin one with --pin",
                  file=sys.stderr)
            return 2
        verdict = compare(report, load_report(args.baseline),
                          tolerance=args.tolerance)
        for metric, ratio in sorted(verdict.ratios.items()):
            print(f"{metric}: {100 * ratio:.1f}% of baseline events/sec",
                  file=sys.stderr)
        for line in verdict.warnings:
            print(f"PERF GATE WARN: {line}", file=sys.stderr)
        if not verdict.ok:
            for line in verdict.regressions:
                print(f"PERF GATE FAIL: {line}", file=sys.stderr)
            return 1
        print("perf gate ok", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
