"""Multiprocessing sweep executor with a deterministic merge.

Every heavy workload in this repository — ``Explorer.explore`` seed
sweeps, the figure-1/2 experiment grids, the ablation benchmarks — is a
bag of *independent, pure* jobs: job ``i`` is a deterministic function
of its input alone.  :class:`SweepPool` fans such a bag out across CPU
cores while preserving the one property everything downstream depends
on: **the merged result sequence is exactly what a serial loop would
have produced**, regardless of worker count, chunking, crashes, or
completion order.

Execution model:

* **chunked scheduling** — items are grouped into chunks that workers
  pull from a shared queue, so fast workers take more chunks (dynamic
  load balancing) without per-item queue overhead;
* **warm worker reuse** — worker processes are spawned once and stay
  resident across chunks (and across repeated ``map`` calls on the same
  pool), so per-job cost is one queue hop, not one ``fork``/import;
* **crash isolation** — a worker that dies (segfault, OOM-kill) takes
  only its in-flight chunk with it: the chunk is requeued (bounded by
  ``max_retries``), a replacement worker is spawned, and the sweep
  continues.  Only when a chunk exceeds its retry budget does the sweep
  fail, with :class:`WorkerCrashError`;
* **deterministic merge** — results are collected keyed by item index
  and released strictly in index order (:meth:`SweepPool.imap` streams
  the contiguous prefix as it completes), so output is byte-identical
  to a serial run.  A job that *raises* is re-raised in the parent as
  :class:`SweepJobError` at its deterministic index position.

Worker lifecycle is observable through ``parallel.*`` typed events on an
optional :class:`~repro.obs.bus.TraceBus` (timestamps are seconds since
pool creation — the pool has no virtual clock).

Jobs and their results must be picklable; on platforms with ``fork``
(Linux) the job callable itself is inherited rather than pickled.
Workers ignore ``SIGINT`` so that a ``KeyboardInterrupt`` in the parent
tears the pool down from one place (see :meth:`SweepPool.shutdown`)
without orphaning children.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
import traceback
from typing import Any, Callable, Iterable, Iterator

from repro.obs.bus import TraceBus
from repro.obs.events import (
    CHUNK_DONE,
    POOL_DONE,
    POOL_START,
    WORKER_CRASH,
    WORKER_EXIT,
    WORKER_SPAWN,
)

#: Hard cap on the default chunk size — beyond this, load balancing
#: suffers more than queue overhead is saved.
MAX_CHUNK = 32

#: Seconds of total silence (no completions, every worker idle) after
#: which the pool assumes a result was lost in flight — e.g. a killed
#: worker's queue feeder died before flushing a finished chunk — and
#: requeues everything still pending.  Duplicate completions are
#: deduplicated, so a spurious requeue costs only wasted work.
STALL_GRACE = 2.0

#: Shared-slot value meaning "worker is idle" (blocked on the task queue).
IDLE = -1

_START_METHOD = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class SweepError(RuntimeError):
    """Base class for sweep-execution failures (the sweep itself broke)."""


class SweepJobError(SweepError):
    """A job raised inside a worker.

    Attributes:
        index: the failing item's index in the sweep.
        worker_traceback: the formatted traceback from the worker process.
    """

    def __init__(self, index: int, worker_traceback: str):
        super().__init__(
            f"sweep job {index} raised in worker:\n{worker_traceback}"
        )
        self.index = index
        self.worker_traceback = worker_traceback


class WorkerCrashError(SweepError):
    """A chunk exhausted its retry budget because workers kept dying."""


def resolve_workers(spec: int | str | None) -> int:
    """Turn a ``--workers`` style spec into a concrete worker count.

    Args:
        spec: a positive int, a numeric string, ``"auto"``/``None``/``0``
            (all meaning: one worker per available CPU), or an int-like.

    Raises:
        ValueError: on a non-numeric, non-``auto`` string or a negative
            count.
    """
    if spec is None:
        return os.cpu_count() or 1
    if isinstance(spec, str):
        if spec.strip().lower() == "auto":
            return os.cpu_count() or 1
        try:
            spec = int(spec)
        except ValueError:
            raise ValueError(f"--workers must be a positive integer or 'auto', got {spec!r}")
    if spec == 0:
        return os.cpu_count() or 1
    if spec < 0:
        raise ValueError(f"worker count must be positive, got {spec}")
    return int(spec)


def _worker_main(worker_id, job, task_q, result_tx, wlock, current) -> None:
    """Worker loop: pull chunks, run jobs, report results.

    Runs in the child process.  Per-job exceptions are captured and
    shipped back as data so one bad seed cannot kill the worker; SIGINT
    is ignored so teardown is driven solely by the parent.

    Two crash-accounting properties make recovery deterministic:

    * ``current`` is a shared int slot the worker stamps with its chunk
      id before touching the first job and resets to :data:`IDLE` after
      shipping the results.  The parent reads the slot, not a message,
      to learn what a dead worker was holding — a SIGKILL cannot lose a
      shared-memory store the way it can lose an unflushed message.
    * results travel over a raw pipe (``result_tx``, serialized by
      ``wlock``), not a feeder-thread queue: once ``send`` returns, the
      bytes sit in the OS pipe buffer and survive the worker's death,
      so a finished chunk is never re-run just because its worker died
      a moment later.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        message = task_q.get()
        if message is None:
            return
        chunk_id, pairs = message
        current.value = chunk_id
        out = []
        for index, item in pairs:
            try:
                out.append((index, True, job(item)))
            except BaseException:
                out.append((index, False, traceback.format_exc()))
        with wlock:
            result_tx.send((worker_id, chunk_id, out))
        current.value = IDLE


class SweepPool:
    """A pool of warm worker processes executing independent jobs.

    Args:
        job: a picklable callable applied to each item.  Must be pure:
            a crashed chunk is re-executed from scratch on another
            worker, and duplicate execution must be harmless.
        workers: worker-count spec (see :func:`resolve_workers`).
        chunk_size: items per scheduling chunk; default balances queue
            overhead against load balancing (``n / (workers * 4)``,
            capped at ``MAX_CHUNK``).
        max_retries: times one chunk may be requeued after worker
            crashes before the sweep fails.
        obs: optional trace bus receiving ``parallel.*`` events.

    Use as a context manager — ``__exit__`` always tears the workers
    down (gracefully on success, by force on error), so an interrupted
    sweep never orphans processes.
    """

    def __init__(
        self,
        job: Callable[[Any], Any],
        workers: int | str | None = None,
        chunk_size: int | None = None,
        max_retries: int = 2,
        obs: TraceBus | None = None,
    ):
        self.job = job
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.max_retries = max_retries
        self.obs = obs
        self.crashes = 0
        self.requeues = 0
        self._ctx = multiprocessing.get_context(_START_METHOD)
        self._task_q = self._ctx.Queue()
        self._result_rx, self._result_tx = self._ctx.Pipe(duplex=False)
        self._wlock = self._ctx.Lock()
        self._procs: dict[int, multiprocessing.process.BaseProcess] = {}
        self._slots: dict[int, Any] = {}
        self._next_worker_id = 0
        self._next_chunk_id = 0
        self._born = time.monotonic()
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    def __enter__(self) -> "SweepPool":
        """Enter a ``with`` block; workers are spawned lazily on first use."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Tear down on block exit: graceful normally, forced on error."""
        self.shutdown(force=exc_type is not None)

    def _emit(self, etype: str, **fields) -> None:
        obs = self.obs
        if obs is not None and obs.active:
            obs.emit(etype, time.monotonic() - self._born, None, **fields)

    def _spawn_worker(self) -> None:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        slot = self._ctx.Value("q", IDLE, lock=False)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self.job, self._task_q, self._result_tx,
                  self._wlock, slot),
            daemon=True,
            name=f"sweep-worker-{worker_id}",
        )
        proc.start()
        self._procs[worker_id] = proc
        self._slots[worker_id] = slot
        self._emit(WORKER_SPAWN, worker=worker_id)

    def _ensure_workers(self) -> None:
        if self._closed:
            raise SweepError("pool is shut down")
        while len(self._procs) < self.workers:
            self._spawn_worker()

    def shutdown(self, force: bool = False) -> None:
        """Stop every worker and release the queues.  Idempotent.

        Args:
            force: terminate immediately (error/interrupt path) instead
                of letting workers drain their stop sentinels.
        """
        if self._closed:
            return
        self._closed = True
        if force:
            for proc in self._procs.values():
                if proc.is_alive():
                    proc.terminate()
        else:
            for _ in self._procs:
                self._task_q.put(None)
        deadline = time.monotonic() + 5.0
        for worker_id, proc in self._procs.items():
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
            if proc.is_alive():  # pragma: no cover - last resort
                proc.kill()
                proc.join(timeout=1.0)
            self._emit(WORKER_EXIT, worker=worker_id)
        self._procs.clear()
        self._slots.clear()
        self._task_q.close()
        self._task_q.cancel_join_thread()
        self._result_rx.close()
        self._result_tx.close()

    # -- execution -------------------------------------------------------------

    def _chunk_size_for(self, n: int) -> int:
        if self.chunk_size is not None:
            return max(1, self.chunk_size)
        return max(1, min(MAX_CHUNK, -(-n // (self.workers * 4))))

    def map(self, items: Iterable[Any]) -> list[Any]:
        """Apply the job to every item; results in item order."""
        return list(self.imap(items))

    def imap(self, items: Iterable[Any]) -> Iterator[Any]:
        """Stream results in item order as they become available.

        Results are buffered until contiguous: item ``i`` is yielded
        only after items ``0..i-1``, which is what makes downstream
        consumers (report building, artifact writing, progress lines)
        byte-identical to a serial loop.

        Raises:
            SweepJobError: a job raised in a worker (re-raised at the
                failing item's in-order position).
            WorkerCrashError: a chunk exceeded ``max_retries`` worker
                crashes.
        """
        items = list(items)
        if not items:
            return
        self._ensure_workers()
        size = self._chunk_size_for(len(items))
        chunks: dict[int, list[tuple[int, Any]]] = {}
        indexed = list(enumerate(items))
        for lo in range(0, len(indexed), size):
            chunk_id = self._next_chunk_id
            self._next_chunk_id += 1
            chunks[chunk_id] = indexed[lo:lo + size]
        pending = set(chunks)
        retries: dict[int, int] = {cid: 0 for cid in chunks}
        results: dict[int, tuple[bool, Any]] = {}
        next_emit = 0
        self._emit(POOL_START, workers=self.workers, jobs=len(items), chunks=len(chunks))
        for chunk_id in chunks:
            self._task_q.put((chunk_id, chunks[chunk_id]))
        last_progress = time.monotonic()

        def handle(message) -> None:
            nonlocal last_progress
            worker_id, chunk_id, payload = message
            last_progress = time.monotonic()
            if chunk_id not in pending:
                return  # duplicate completion after a stall requeue
            pending.discard(chunk_id)
            for index, ok, value in payload:
                results[index] = (ok, value)
            self._emit(CHUNK_DONE, chunk=chunk_id, worker=worker_id,
                       jobs=len(payload))

        def requeue(chunk_id: int) -> None:
            retries[chunk_id] += 1
            self.requeues += 1
            if retries[chunk_id] > self.max_retries:
                raise WorkerCrashError(
                    f"chunk {chunk_id} (items "
                    f"{[i for i, _ in chunks[chunk_id]]}) lost "
                    f"{retries[chunk_id]} times; giving up"
                )
            self._task_q.put((chunk_id, chunks[chunk_id]))

        def reap_dead_workers() -> None:
            dead = [wid for wid, p in self._procs.items() if not p.is_alive()]
            if not dead:
                return
            # Drain completions already in the pipe buffer first, so a
            # chunk the dead worker finished is never pointlessly re-run.
            while self._result_rx.poll():
                handle(self._result_rx.recv())
            for worker_id in dead:
                self._procs.pop(worker_id).join()
                slot = self._slots.pop(worker_id).value
                chunk_id = slot if slot != IDLE else None
                self.crashes += 1
                lost = chunk_id is not None and chunk_id in pending
                self._emit(WORKER_CRASH, worker=worker_id, chunk=chunk_id,
                           requeued=lost)
                if lost:
                    requeue(chunk_id)
            if pending:
                self._ensure_workers()

        try:
            while pending:
                if self._result_rx.poll(0.05):
                    handle(self._result_rx.recv())
                else:
                    reap_dead_workers()
                    # Lost-chunk backstop: a worker died in the instant
                    # between dequeueing a chunk and stamping its claim
                    # slot, so the chunk is on nobody's books.  Everyone
                    # idle + nothing arriving => requeue what is still
                    # pending (duplicates are deduplicated by handle()).
                    if (
                        pending
                        and time.monotonic() - last_progress > STALL_GRACE
                        and all(s.value == IDLE for s in self._slots.values())
                    ):
                        for chunk_id in sorted(pending):
                            requeue(chunk_id)
                        last_progress = time.monotonic()
                while next_emit in results:
                    ok, value = results.pop(next_emit)
                    if not ok:
                        raise SweepJobError(next_emit, value)
                    next_emit += 1
                    yield value
            while next_emit in results:
                ok, value = results.pop(next_emit)
                if not ok:
                    raise SweepJobError(next_emit, value)
                next_emit += 1
                yield value
            self._emit(POOL_DONE, jobs=len(items), crashes=self.crashes,
                       requeues=self.requeues)
        except BaseException:
            self.shutdown(force=True)
            raise
