"""Consistent-hash sharding of the file namespace across lease servers.

The paper's protocol assumes a single lease authority per file.  This
package scales that assumption out instead of up: the file namespace is
consistent-hashed across ``N`` independent server shards — each with its
own :class:`~repro.lease.table.LeaseTable`,
:class:`~repro.protocol.server.ServerEngine` and storage — and a
client-side router maps every request to the shard that owns its datum.
Per-shard the protocol is *unchanged*: every safety argument of the
single-server design (lease terms, write approval, the §2 crash rule)
applies to each shard independently, because no datum is ever owned by
more than one shard.

Layers:

* :mod:`repro.shard.ring` — the hash ring (``hashlib``-based, so shard
  placement is identical across processes and Python versions);
* :mod:`repro.shard.router` — datum → shard/host routing;
* :mod:`repro.shard.store` — an N-store facade allocating globally
  unique file ids and placing each file on its hash-owned shard;
* :mod:`repro.shard.client` — a sharded client engine multiplexing one
  inner :class:`~repro.protocol.client.ClientEngine` per shard (the
  pipelined batching layer then splits batches per shard for free);
* :mod:`repro.shard.sim` — the sharded DES cluster used by
  ``repro.check`` scenarios with ``shards > 1``;
* :mod:`repro.shard.transport` — a fan-out transport composing one real
  (TCP/UDP/hub) client transport per shard for the asyncio runtime.
"""

from repro.shard.client import ShardedClientEngine
from repro.shard.ring import HashRing
from repro.shard.router import SHARD_ID_SPAN, ShardRouter, shard_hosts
from repro.shard.store import ShardedStore

__all__ = [
    "HashRing",
    "ShardRouter",
    "ShardedClientEngine",
    "ShardedStore",
    "SHARD_ID_SPAN",
    "shard_hosts",
]
