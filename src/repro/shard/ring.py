"""The consistent-hash ring.

Placement must be a pure function of the key and the shard count:
identical on every client, on the servers, across process restarts and
across Python versions.  Python's builtin ``hash`` is salted per process
(``PYTHONHASHSEED``), so the ring hashes through :mod:`hashlib` instead —
``tests/shard/test_router.py`` pins this with a cross-process golden.

The ring is the classic construction: each shard contributes
``replicas`` virtual points, a key belongs to the first point clockwise
from its own hash.  Consistency matters for the usual reason — growing
``N`` shards to ``N+1`` moves only ``~1/(N+1)`` of the keyspace, so a
re-shard invalidates few cached placements.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

#: Virtual points each shard contributes to the ring.  Enough that the
#: keyspace split is within a few percent of even at small shard counts.
DEFAULT_REPLICAS = 64


def stable_hash(key: str) -> int:
    """A 64-bit process-independent hash of ``key``.

    The first 8 bytes of SHA-256 — overkill cryptographically, but it is
    in the standard library, stable forever, and cheap at the call rates
    the router sees (one hash per routed operation).
    """
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


class HashRing:
    """Maps string keys onto ``n_shards`` buckets, consistently."""

    def __init__(self, n_shards: int, replicas: int = DEFAULT_REPLICAS):
        if n_shards < 1:
            raise ValueError(f"need at least one shard: {n_shards}")
        if replicas < 1:
            raise ValueError(f"need at least one replica point: {replicas}")
        self.n_shards = n_shards
        self.replicas = replicas
        points = sorted(
            (stable_hash(f"repro.shard/{shard}/{replica}"), shard)
            for shard in range(n_shards)
            for replica in range(replicas)
        )
        self._hashes = [h for h, _ in points]
        self._owners = [s for _, s in points]

    def shard_of(self, key: str) -> int:
        """The shard index owning ``key``."""
        index = bisect_right(self._hashes, stable_hash(key)) % len(self._hashes)
        return self._owners[index]

    def spread(self, keys: list[str]) -> list[int]:
        """Per-shard key counts for ``keys`` (diagnostics and tests)."""
        counts = [0] * self.n_shards
        for key in keys:
            counts[self.shard_of(key)] += 1
        return counts
