"""A fan-out transport: one client endpoint per shard, one interface.

The real client transports (:class:`~repro.runtime.tcp.
TcpClientTransport`, :class:`~repro.runtime.udp.UdpClientTransport`, hub
endpoints) each speak to exactly one server.  :class:`FanoutTransport`
composes one of them per shard behind the :class:`~repro.runtime.
transport.Transport` protocol, routing outbound ``send(dst, ...)`` by
destination host name and funnelling every inbound message into the one
handler the node installs.  Combined with
:class:`~repro.shard.client.ShardedClientEngine` (whose ``Send`` effects
already target shard host names), this lets an unmodified
:class:`~repro.runtime.node.LeaseClientNode` talk to ``N`` real server
processes.
"""

from __future__ import annotations

import asyncio

from repro.obs.bus import NULL_BUS
from repro.obs.events import SHARD_MISS
from repro.protocol.messages import Message
from repro.runtime.transport import MessageHandler, Transport
from repro.types import HostId


class FanoutTransport:
    """Routes ``send`` calls across per-shard transports by destination.

    Args:
        name: this endpoint's host name (the client's).
        transports: shard-order mapping of server host name to the
            transport bound to that server.  Each inner transport must
            deliver inbound messages with its server's name as ``src``
            (the stock client transports all do).
    """

    def __init__(
        self,
        name: HostId,
        transports: dict[HostId, Transport],
        obs=None,
        clock=None,
    ):
        if not transports:
            raise ValueError("need at least one shard transport")
        self._name = name
        self._transports = dict(transports)
        self._obs = obs or NULL_BUS
        self._clock = clock
        self._handler: MessageHandler | None = None
        for transport in self._transports.values():
            transport.set_handler(self._deliver)

    @property
    def name(self) -> HostId:
        """This endpoint's host name."""
        return self._name

    def set_handler(self, handler: MessageHandler) -> None:
        """Install the node's inbound callback (shared by every shard)."""
        self._handler = handler

    def _deliver(self, message: Message, src: HostId) -> None:
        if self._handler is not None:
            self._handler(message, src)

    async def send(self, dst: HostId, message: Message) -> None:
        """Forward to the transport bound to ``dst``.

        A destination no transport is bound to is dropped with a
        ``shard.miss`` event — same contract as the real transports,
        which drop rather than raise on unreachable peers.
        """
        transport = self._transports.get(dst)
        if transport is None:
            if self._obs.active:
                now = self._clock.now() if self._clock is not None else 0.0
                self._obs.emit(
                    SHARD_MISS, now, self._name, src=dst, kind=message.kind
                )
            return
        await transport.send(dst, message)

    async def close(self) -> None:
        """Close every shard transport."""
        await asyncio.gather(
            *(t.close() for t in self._transports.values()),
            return_exceptions=True,
        )
