"""The sharded DES cluster: N independent lease servers, one oracle.

:func:`build_sharded_cluster` mirrors :func:`repro.sim.driver.
build_cluster` but stands up one :class:`~repro.sim.driver.SimServer`
per shard (hosts ``s0 .. s{N-1}``, each with its own
:class:`~repro.storage.store.FileStore`, lease table and term policy)
and binds every :class:`~repro.sim.driver.SimClient` to a
:class:`~repro.shard.client.ShardedClientEngine` addressing all of them.

One :class:`~repro.sim.oracle.ConsistencyOracle` spans the whole sharded
namespace.  File datum ids are globally unique (the
:class:`~repro.shard.store.ShardedStore` mints them from one counter),
so file history merges cleanly; directory datums are *not* globally
unique (every shard's namespace has its own root and dir counter), so
shards beyond the first attach with a ``s{k}/`` prefix on their
directory datum ids — see :meth:`~repro.sim.oracle.ConsistencyOracle.
attach_store`.

The fault surface is unchanged: the scenario fault vocabulary addresses
hosts by name, and shard hosts are ordinary simulated hosts, so a
``crash`` of ``s2`` exercises the §2 server-recovery rule on that shard
while the others keep serving — exactly the availability claim sharding
makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.lease.policy import FixedTermPolicy, TermPolicy
from repro.protocol.client import ClientConfig
from repro.protocol.server import ServerConfig
from repro.shard.client import ShardedClientEngine
from repro.shard.router import ShardRouter, shard_hosts
from repro.shard.store import ShardedStore
from repro.sim.driver import Cluster, SimClient, SimServer
from repro.sim.host import Host
from repro.sim.kernel import Kernel
from repro.sim.network import Network, NetworkParams
from repro.sim.oracle import ConsistencyOracle


@dataclass
class ShardedCluster(Cluster):
    """A :class:`~repro.sim.driver.Cluster` with one server per shard.

    ``server`` (the inherited field) aliases shard 0 so code written
    against the single-server cluster keeps working; ``servers`` holds
    all of them.  ``store`` is the :class:`~repro.shard.store.
    ShardedStore` facade.
    """

    servers: list[SimServer] = field(default_factory=list)
    router: ShardRouter | None = None

    @property
    def n_shards(self) -> int:
        """Number of server shards."""
        return len(self.servers)


def build_sharded_cluster(
    n_shards: int,
    n_clients: int = 2,
    policy: TermPolicy | None = None,
    network_params: NetworkParams | None = None,
    client_config: ClientConfig | None = None,
    server_config: ServerConfig | None = None,
    use_multicast: bool = True,
    seed: int = 0,
    strict_oracle: bool = True,
    setup_store: Callable[[ShardedStore], None] | None = None,
    client_clock_params: Callable[[int], tuple[float, float]] | None = None,
    server_clock_params: tuple[float, float] = (0.0, 0.0),
    obs=None,
) -> ShardedCluster:
    """Assemble a simulated sharded cluster.

    Mirrors :func:`repro.sim.driver.build_cluster`; differences:

    Args:
        n_shards: number of server shards (hosts ``s0 .. s{N-1}``).
        policy: term policy *shared* by every shard (the stock policies
            are stateless; pass a fresh instance per run as usual).
        setup_store: receives the :class:`ShardedStore` facade — created
            files land on their hash-owned shards.
        server_clock_params: (offset, drift) applied to *every* shard
            host; per-shard clock faults go through the fault injector.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard: {n_shards}")
    kernel = Kernel(seed=seed, obs=obs)
    network = Network(kernel, network_params or NetworkParams(), obs=obs)
    router = ShardRouter(n_shards)
    store = ShardedStore(n_shards, router=router)
    if setup_store is not None:
        setup_store(store)

    # Shard 0 seeds the oracle's history; the rest attach with prefixed
    # directory ids so per-shard namespaces don't alias.
    oracle = ConsistencyOracle(kernel, store.shards[0], strict=strict_oracle, obs=obs)
    for k in range(1, n_shards):
        oracle.attach_store(store.shards[k], dir_prefix=f"s{k}/")

    term_policy = policy or FixedTermPolicy(10.0)
    offset, drift = server_clock_params
    servers = []
    for k, host_name in enumerate(shard_hosts(n_shards)):
        host = Host(host_name, kernel, clock_offset=offset, clock_drift=drift)
        network.attach(host)
        servers.append(
            SimServer(
                host,
                network,
                store.shards[k],
                term_policy,
                config=server_config,
                use_multicast=use_multicast,
                obs=obs,
            )
        )

    clients = []
    for i in range(n_clients):
        c_offset, c_drift = (0.0, 0.0)
        if client_clock_params is not None:
            c_offset, c_drift = client_clock_params(i)
        host = Host(f"c{i}", kernel, clock_offset=c_offset, clock_drift=c_drift)
        network.attach(host)
        clients.append(
            SimClient(
                host,
                network,
                shard_hosts(n_shards),
                config=client_config,
                oracle=oracle,
                engine_cls=ShardedClientEngine,
                obs=obs,
            )
        )

    return ShardedCluster(
        kernel=kernel,
        network=network,
        server=servers[0],
        clients=clients,
        store=store,
        oracle=oracle,
        obs=obs,
        servers=servers,
        router=router,
    )
