"""The shard-aware client engine.

:class:`ShardedClientEngine` duck-types the sans-io
:class:`~repro.protocol.client.ClientEngine` interface the drivers bind
to (``SimClient`` in the DES, ``LeaseClientNode`` in the asyncio
runtime), but multiplexes one *inner* ``ClientEngine`` per shard.  Every
application operation is routed by datum hash to its owning shard's
engine; everything below the routing decision — lease bookkeeping,
retransmission, the pipelined batching layer, CAS writes — runs the
unmodified single-server protocol against that shard.

Per-shard batch splitting falls out of the structure: each inner engine
owns its own :class:`~repro.protocol.pipeline.BatchPipeline`, so ops
issued in one instant ship as one ``BatchRequest`` *per shard touched*,
and per-file op order is preserved because a file maps to exactly one
shard (ops on one datum never cross pipelines).  Batched lease
extensions (§3.1) likewise cover exactly the leases granted by the
extension's target shard.

Multiplexing invariants:

* **timer keys** — inner engine ``k``'s timers are namespaced as
  ``"{k}:{key}"`` on the way out and stripped on the way back in, so the
  shards' ``rpc:{id}`` / ``pipeline.flush`` / ``anticipate`` timers
  coexist in one driver timer bank;
* **id spaces** — engine ``k`` counts ops/requests/write-seqs from
  ``id_base + k * SHARD_ID_SPAN``, so op ids are globally unique and the
  driver's completion tables need no shard awareness;
* **message routing** — inbound messages are dispatched by source host
  (each shard replies from its own name); a message from an unknown host
  is dropped with a ``shard.miss`` event rather than crashing the node.

Namespace operations route to shard 0: path resolution is a directory
read, and directory datums are not yet hash-partitioned (cross-shard
rename in particular would need a transaction across two lease
authorities).  Scenario workloads and benchmarks only address files.
"""

from __future__ import annotations

from repro.obs.bus import NULL_BUS
from repro.obs.events import SHARD_MISS, SHARD_ROUTE
from repro.protocol.client import ClientConfig, ClientEngine, ClientMetrics
from repro.protocol.effects import CancelTimer, Effect, SetTimer
from repro.protocol.messages import Message
from repro.shard.router import SHARD_ID_SPAN, ShardRouter
from repro.types import DatumId, HostId, Version


class ShardedClientEngine:
    """One client-side protocol engine per shard, behind one interface."""

    def __init__(
        self,
        name: HostId,
        server: tuple[HostId, ...],
        config: ClientConfig | None = None,
        id_base: int = 0,
        obs=None,
        router: ShardRouter | None = None,
        engine_cls: type[ClientEngine] = ClientEngine,
    ):
        """Args:
            server: the shard server host names, in shard order.  (Named
                ``server`` so drivers can pass it positionally exactly
                where they pass the single server's name today.)  An
                element may itself be a tuple — the replica group of
                that shard's lease authority; the inner engine then
                follows ``NotMaster`` redirects within its group.
            router: placement override; by default a fresh
                :class:`ShardRouter` over ``server`` — deterministic, so
                every independently constructed party agrees.
        """
        self.name = name
        self.servers = tuple(server)
        #: Per-shard replica groups (singleton groups when unreplicated).
        self.groups: tuple[tuple[HostId, ...], ...] = tuple(
            g if isinstance(g, tuple) else (g,) for g in self.servers
        )
        self.config = config or ClientConfig()
        self.obs = obs or NULL_BUS
        self.router = router or ShardRouter(
            len(self.groups), hosts=tuple(group[0] for group in self.groups)
        )
        self.engines: list[ClientEngine] = [
            engine_cls(
                name,
                group if len(group) > 1 else group[0],
                config=self.config,
                id_base=id_base + k * SHARD_ID_SPAN,
                obs=obs,
            )
            for k, group in enumerate(self.groups)
        ]
        #: Any replica of shard ``k`` replies as shard ``k``.
        self._by_host = {
            host: k for k, group in enumerate(self.groups) for host in group
        }
        #: Operations routed to each shard (the per-shard breakdown the
        #: load harness reports).
        self.shard_counts: list[int] = [0] * len(self.servers)

    # -- routing ----------------------------------------------------------------

    def shard_of(self, datum: DatumId) -> int:
        """The shard index owning ``datum``."""
        return self.router.shard_of(datum)

    def _route(self, datum: DatumId, kind: str, now: float) -> int:
        shard = self.router.shard_of(datum)
        self.shard_counts[shard] += 1
        if self.obs.active:
            self.obs.emit(
                SHARD_ROUTE, now, self.name,
                datum=str(datum), shard=shard, kind=kind,
            )
        return shard

    def _wrap(self, shard: int, effects: list[Effect]) -> list[Effect]:
        """Namespace inner timer keys; sends/completions pass through
        (each inner engine already targets its own shard's host)."""
        out: list[Effect] = []
        for effect in effects:
            if isinstance(effect, SetTimer):
                out.append(SetTimer(f"{shard}:{effect.key}", effect.delay))
            elif isinstance(effect, CancelTimer):
                out.append(CancelTimer(f"{shard}:{effect.key}"))
            else:
                out.append(effect)
        return out

    # -- lifecycle ---------------------------------------------------------------

    def startup_effects(self, now: float) -> list[Effect]:
        """Concatenated startup effects of every shard engine."""
        effects: list[Effect] = []
        for shard, engine in enumerate(self.engines):
            effects.extend(self._wrap(shard, engine.startup_effects(now)))
        return effects

    # -- application API -----------------------------------------------------------

    def read(self, datum: DatumId, now: float) -> tuple[int, list[Effect]]:
        """Read a datum via its owning shard's engine."""
        shard = self._route(datum, "read", now)
        op_id, effects = self.engines[shard].read(datum, now)
        return op_id, self._wrap(shard, effects)

    def write(
        self,
        datum: DatumId,
        content: bytes,
        now: float,
        cas: Version | None = None,
    ) -> tuple[int, list[Effect]]:
        """Write a datum through its owning shard."""
        shard = self._route(datum, "write", now)
        op_id, effects = self.engines[shard].write(datum, content, now, cas=cas)
        return op_id, self._wrap(shard, effects)

    def namespace_op(
        self, op_name: str, args: tuple, now: float
    ) -> tuple[int, list[Effect]]:
        """Submit a namespace mutation (routed to shard 0 — see module doc)."""
        shard = 0
        self.shard_counts[shard] += 1
        if self.obs.active:
            self.obs.emit(
                SHARD_ROUTE, now, self.name, datum="", shard=shard, kind="ns",
            )
        op_id, effects = self.engines[shard].namespace_op(op_name, args, now)
        return op_id, self._wrap(shard, effects)

    def relinquish(self, datum: DatumId) -> list[Effect]:
        """Voluntarily give up a lease on the owning shard (§4)."""
        shard = self.router.shard_of(datum)
        return self._wrap(shard, self.engines[shard].relinquish(datum))

    def relinquish_all(self, now: float) -> list[Effect]:
        """Give up every held lease, on every shard."""
        effects: list[Effect] = []
        for shard, engine in enumerate(self.engines):
            effects.extend(self._wrap(shard, engine.relinquish_all(now)))
        return effects

    def write_temp(self, path: str, content: bytes) -> None:
        """Write a temporary file locally (client-local, shard-agnostic)."""
        self.engines[0].write_temp(path, content)

    def read_temp(self, path: str) -> bytes | None:
        """Read a locally stored temporary file."""
        return self.engines[0].read_temp(path)

    # -- inbound dispatch ------------------------------------------------------------

    def handle_message(self, msg: Message, src: HostId, now: float) -> list[Effect]:
        """Dispatch an inbound message to the engine bound to ``src``."""
        shard = self._by_host.get(src)
        if shard is None:
            if self.obs.active:
                self.obs.emit(SHARD_MISS, now, self.name, src=src, kind=msg.kind)
            return []
        return self._wrap(shard, self.engines[shard].handle_message(msg, src, now))

    def handle_timer(self, key: str, now: float) -> list[Effect]:
        """Strip the shard prefix and dispatch to the owning engine."""
        prefix, _, inner = key.partition(":")
        shard = int(prefix)
        return self._wrap(shard, self.engines[shard].handle_timer(inner, now))

    # -- introspection ----------------------------------------------------------------

    @property
    def metrics(self) -> ClientMetrics:
        """Aggregated counters across every shard engine."""
        total = ClientMetrics()
        for engine in self.engines:
            m = engine.metrics
            total.reads += m.reads
            total.writes += m.writes
            total.local_hits += m.local_hits
            total.extend_requests += m.extend_requests
            total.read_requests += m.read_requests
            total.approvals_granted += m.approvals_granted
            total.retransmissions += m.retransmissions
            total.failures += m.failures
            total.cas_conflicts += m.cas_conflicts
            total.redirects += m.redirects
        return total

    def outstanding_requests(self) -> int:
        """RPCs currently awaiting a reply, across every shard."""
        return sum(engine.outstanding_requests() for engine in self.engines)

    def pipeline_stats(self) -> tuple[int, int]:
        """Summed ``(batched frames, ops shipped in them)`` across shards."""
        batches = ops = 0
        for engine in self.engines:
            b, o = engine.pipeline_stats()
            batches += b
            ops += o
        return batches, ops
