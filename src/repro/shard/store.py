"""The sharded storage facade: N stores, one namespace of datum ids.

Placement is by *datum id*, not path: the facade owns a single global id
counter, mints the id first, hashes it through the ring, and only then
creates the file in the owning shard's :class:`~repro.storage.store.
FileStore`.  This breaks the circularity that per-shard counters would
create (two shards both minting ``file:1``) and keeps every datum id
unique across the whole deployment — which is what lets one consistency
oracle span all shards without collisions.

Each shard's store (and its namespace) is otherwise a completely normal
single-server store: the per-shard :class:`~repro.protocol.server.
ServerEngine` works against it unmodified.
"""

from __future__ import annotations

import itertools

from repro.shard.router import ShardRouter
from repro.storage.file import FileData
from repro.storage.store import FileStore
from repro.types import DatumId, FileClass, Version


class ShardedStore:
    """N per-shard :class:`FileStore` instances behind one datum-id space.

    Duck-types the slice of the ``FileStore`` interface the scenario
    runner and benchmarks use (``create_file`` / ``file_datum`` /
    ``version_of`` / ``read_datum`` / ``datum_exists`` / ``file_count``),
    so a sharded cluster plugs in wherever a single store did.
    """

    def __init__(self, n_shards: int, router: ShardRouter | None = None):
        self.router = router or ShardRouter(n_shards)
        if self.router.n_shards != n_shards:
            raise ValueError(
                f"router has {self.router.n_shards} shards, expected {n_shards}"
            )
        self.shards: list[FileStore] = [FileStore() for _ in range(n_shards)]
        self._ids = itertools.count(1)
        #: path -> owning shard index, recorded at creation time (paths
        #: are bound in the owning shard's namespace only).
        self._path_shard: dict[str, int] = {}

    # -- file lifecycle ------------------------------------------------------

    def create_file(
        self,
        path: str,
        content: bytes = b"",
        file_class: FileClass = FileClass.NORMAL,
        mode: str = "rw",
        now: float = 0.0,
    ) -> FileData:
        """Create a file on its hash-owned shard; returns the record."""
        file_id = f"file:{next(self._ids)}"
        shard = self.router.shard_of(DatumId.file(file_id))
        self._path_shard[path] = shard
        return self.shards[shard].create_file(
            path, content, file_class=file_class, mode=mode, now=now,
            file_id=file_id,
        )

    # -- routing -------------------------------------------------------------

    def shard_of(self, datum: DatumId) -> int:
        """The shard index owning ``datum``."""
        return self.router.shard_of(datum)

    def store_for(self, datum: DatumId) -> FileStore:
        """The shard store owning ``datum``."""
        return self.shards[self.router.shard_of(datum)]

    def shard_of_path(self, path: str) -> int:
        """The shard index a created path lives on."""
        return self._path_shard[path]

    # -- FileStore facade ------------------------------------------------------

    def file_datum(self, path: str) -> DatumId:
        """The file-contents datum for a path created through this facade."""
        return self.shards[self._path_shard[path]].file_datum(path)

    def version_of(self, datum: DatumId) -> Version:
        """Current committed version of a datum, wherever it lives."""
        return self.store_for(datum).version_of(datum)

    def read_datum(self, datum: DatumId) -> tuple[Version, object]:
        """Read ``(version, payload)`` from the owning shard."""
        return self.store_for(datum).read_datum(datum)

    def datum_exists(self, datum: DatumId) -> bool:
        """True when the owning shard holds the datum."""
        return self.store_for(datum).datum_exists(datum)

    def file_count(self) -> int:
        """Total files across every shard."""
        return sum(store.file_count() for store in self.shards)
