"""Datum-to-shard routing.

A :class:`ShardRouter` is built independently by every party — each
client, the sharded store, the DES cluster builder, the bench harness —
from nothing but the shard count, and all of them agree on placement by
construction: the underlying :class:`~repro.shard.ring.HashRing` is a
pure function of ``n_shards``, and the routed key is ``str(datum)``
(e.g. ``"file:17"``), which is process-independent.
"""

from __future__ import annotations

from repro.shard.ring import DEFAULT_REPLICAS, HashRing
from repro.types import DatumId, HostId

#: Width of each shard's slice of a client's op/request/write-seq id
#: space.  The sharded client engine gives inner engine ``k`` the base
#: ``id_base + k * SHARD_ID_SPAN`` so ids (and the ``rpc:{id}`` timer
#: keys derived from them) never collide across shards; drivers step
#: ``id_base`` by at most 1e6 per incarnation/client, far below this.
SHARD_ID_SPAN = 1_000_000_000


def shard_hosts(n_shards: int) -> tuple[HostId, ...]:
    """The canonical shard server host names, ``("s0", ..., "s{N-1}")``."""
    return tuple(f"s{k}" for k in range(n_shards))


def replica_hosts(n_replicas: int, shard: int | None = None) -> tuple[HostId, ...]:
    """The canonical replica host names of one lease-authority group.

    ``("r0", ..., "r{N-1}")`` for the unsharded authority, or
    ``("s{k}r0", ...)`` for shard ``k`` of a sharded one.
    """
    prefix = "r" if shard is None else f"s{shard}r"
    return tuple(f"{prefix}{j}" for j in range(n_replicas))


def is_replica_host(host: str) -> bool:
    """True for replica host names: ``r{j}`` or ``s{k}r{j}``.

    Replica hosts are *dual-role* for the §5 clock-fault analysis: the
    master both grants file leases (fast clock dangerous) and holds the
    PaxosLease master lease (slow/backward clock dangerous), so — unlike
    plain server hosts — a clock fault on a replica is dangerous in both
    directions.
    """
    if len(host) > 1 and host[0] == "r" and host[1:].isdigit():
        return True
    if len(host) > 3 and host[0] == "s":
        shard_part, sep, rep_part = host[1:].partition("r")
        return bool(sep) and shard_part.isdigit() and rep_part.isdigit()
    return False


def is_server_host(host: str) -> bool:
    """True for lease-authority host names: ``"server"``, a shard
    ``s{k}``, or a replica ``r{j}`` / ``s{k}r{j}``.

    Client hosts are ``c{i}``; the §5 clock-fault danger directions flip
    between server and client hosts, so fault classification needs this.
    """
    return (
        host == "server"
        or (len(host) > 1 and host[0] == "s" and host[1:].isdigit())
        or is_replica_host(host)
    )


class ShardRouter:
    """Maps datums to the shard (and server host) that owns them."""

    def __init__(
        self,
        n_shards: int,
        hosts: tuple[HostId, ...] | None = None,
        replicas: int = DEFAULT_REPLICAS,
    ):
        self.n_shards = n_shards
        self.hosts = tuple(hosts) if hosts is not None else shard_hosts(n_shards)
        if len(self.hosts) != n_shards:
            raise ValueError(
                f"{n_shards} shards but {len(self.hosts)} hosts: {self.hosts}"
            )
        self.ring = HashRing(n_shards, replicas=replicas)
        self._index = {host: k for k, host in enumerate(self.hosts)}

    def shard_of(self, datum: DatumId) -> int:
        """The shard index owning ``datum``."""
        return self.ring.shard_of(str(datum))

    def host_of(self, datum: DatumId) -> HostId:
        """The server host name owning ``datum``."""
        return self.hosts[self.shard_of(datum)]

    def index_of(self, host: HostId) -> int | None:
        """The shard index of a server host name (None for strangers)."""
        return self._index.get(host)
