"""The client's datum cache and local temporary-file store."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.types import DatumId, Version


@dataclass
class CacheEntry:
    """One cached datum.

    Attributes:
        datum: what is cached.
        version: the committed version this payload corresponds to.
        payload: file contents (bytes) or directory bindings (tuple).
        valid: False after an approval-driven invalidation.
    """

    datum: DatumId
    version: Version
    payload: object
    valid: bool = True


@dataclass
class CacheStats:
    """Hit/miss accounting for experiments."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    stale_rejects: int = 0

    @property
    def lookups(self) -> int:
        """Total get() calls observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache."""
        return self.hits / self.lookups if self.lookups else 0.0


class FileCache:
    """Capacity-bounded cache of datums, with invalidation floors.

    The cache stores data only; *usability* of an entry additionally
    requires a valid lease, which the client engine checks against its
    :class:`~repro.lease.holder.LeaseSet`.

    **Eviction** defaults to plain LRU (the seed behaviour, byte-for-byte:
    the pinned golden digests run through this path).  Passing a
    :class:`~repro.cache.eviction.LruLfuPolicy` switches victim selection
    to hybrid score-based eviction for skewed workloads; the policy
    observes every access via ``touch`` and picks victims on overflow.

    **Version floors** are the correctness guard: when the client approves
    a write (invalidating its copy), a floor records the pending version so
    that a stale in-flight reply cannot re-admit older bytes.  Floors live
    *outside* the LRU — an early design kept them on tombstone entries,
    and the stateful property tests demonstrated that eviction could then
    silently discard a floor.  They are tiny (one int per datum ever
    invalidated) and are released when the datum is dropped.
    """

    def __init__(self, capacity: int = 4096, policy: Any = None):
        """Args:
            capacity: maximum resident entries (must be >= 1).
            policy: optional :class:`~repro.cache.eviction.LruLfuPolicy`;
                None keeps the built-in LRU victim selection.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.policy = policy
        self._entries: OrderedDict[DatumId, CacheEntry] = OrderedDict()
        #: datum -> minimum admissible version; never evicted.
        self._floors: dict[DatumId, Version] = {}
        self.stats = CacheStats()

    def get(self, datum: DatumId) -> CacheEntry | None:
        """Return a valid entry (refreshing LRU position), else None."""
        entry = self._entries.get(datum)
        if entry is None or not entry.valid:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(datum)
        if self.policy is not None:
            self.policy.touch(datum)
        self.stats.hits += 1
        return entry

    def peek(self, datum: DatumId) -> CacheEntry | None:
        """Return the entry regardless of validity, without stats/LRU effects."""
        return self._entries.get(datum)

    def floor_of(self, datum: DatumId) -> Version:
        """The minimum version :meth:`put` will admit for ``datum``."""
        return self._floors.get(datum, 0)

    def put(self, datum: DatumId, version: Version, payload: object) -> bool:
        """Admit a fetched or written payload.

        Returns:
            False when refused: the version is below the datum's
            invalidation floor (a stale in-flight reply) or below the
            version already cached.
        """
        if version < self._floors.get(datum, 0):
            self.stats.stale_rejects += 1
            return False
        entry = self._entries.get(datum)
        if entry is not None and version < entry.version:
            self.stats.stale_rejects += 1
            return False
        # Admission proves the server reached `version` (its versions are
        # monotonic), so nothing older is ever admissible again.  Recording
        # that as the floor makes the guard survive eviction: without it, a
        # late in-flight reply carrying an older version could re-admit
        # stale bytes after the newer entry was evicted under capacity
        # pressure — and a still-valid lease would then serve them as
        # local hits (found by the stampede adversarial family).
        if version > self._floors.get(datum, 0):
            self._floors[datum] = version
        if entry is not None:
            entry.version = version
            entry.payload = payload
            entry.valid = True
            self._entries.move_to_end(datum)
            if self.policy is not None:
                self.policy.touch(datum)
            return True
        self._entries[datum] = CacheEntry(datum, version, payload)
        if self.policy is not None:
            self.policy.touch(datum)
        self._evict(new=datum)
        return True

    def invalidate(self, datum: DatumId, min_version: Version | None = None) -> None:
        """Invalidate the cached copy (approval of a write, §2).

        Args:
            min_version: when known, the version below which payloads must
                be refused by later :meth:`put` calls.  An *explicit* value
                takes precedence over the entry-derived default — a
                write-lease acquisition, for example, invalidates copies
                while naming the still-current version, which must remain
                re-admittable once the lease ends without a commit.
                Without an entry *and* without a known version there is
                nothing to record.
        """
        entry = self._entries.get(datum)
        if entry is None and min_version is None:
            return
        floor = self._floors.get(datum, 0)
        if min_version is not None:
            floor = max(floor, min_version)
        elif entry is not None:
            floor = max(floor, entry.version + 1)
        if entry is not None:
            entry.valid = False
        self._floors[datum] = floor
        self.stats.invalidations += 1

    def lower_floor(self, datum: DatumId, version: Version) -> None:
        """Lower (never raise) ``datum``'s admission floor to ``version``.

        For when the write that raised the floor is proven to have aborted
        at the server: its version will never commit, so keeping the floor
        would refuse every live reply forever (a refetch livelock).  The
        proof obligation — a post-approval reply that grants a lease yet
        still carries a lower version — rests with the protocol engine.
        """
        if version < self._floors.get(datum, 0):
            self._floors[datum] = version

    def drop(self, datum: DatumId) -> None:
        """Remove an entry and its floor entirely (unlink semantics)."""
        self._entries.pop(datum, None)
        self._floors.pop(datum, None)
        if self.policy is not None:
            self.policy.forget(datum)

    def clear(self) -> None:
        """Client crash: all volatile cache state is gone."""
        self._entries.clear()
        self._floors.clear()
        if self.policy is not None:
            self.policy.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, datum: DatumId) -> bool:
        return datum in self._entries

    def _evict(self, new: DatumId | None = None) -> None:
        """Evict down to capacity.

        ``new`` is the datum the triggering :meth:`put` just admitted and
        is exempt from score-based victim selection: under a frequency-
        weighted policy a cold key scores below every hot resident, so
        without the exemption the cache evicts the entry it just admitted
        — ``put`` reports success, the caller's next lookup misses, and a
        protocol engine refetches in a storm (found by the flash-crowd
        adversarial workload at capacity 2).  Plain LRU is immune: the
        newest entry is by construction the last victim.
        """
        while len(self._entries) > self.capacity:
            if self.policy is None:
                evicted, _ = self._entries.popitem(last=False)
            else:
                pool = self._entries.keys()
                if new is not None and len(self._entries) > 1:
                    pool = (d for d in pool if d != new)
                evicted = self.policy.select_victim(pool)
                del self._entries[evicted]
                self.policy.forget(evicted)
            self.stats.evictions += 1


class TempFileStore:
    """Client-local storage for temporary files.

    V handles temporary files "in a manner analogous to using a local disk"
    — they never touch the server, never need leases, and never appear in
    consistency traffic.  Keyed by path because temp files have no
    server-side file id.
    """

    def __init__(self) -> None:
        self._files: dict[str, bytes] = {}
        self.writes = 0
        self.reads = 0

    def write(self, path: str, content: bytes) -> None:
        """Store a temporary file locally (never reaches the server)."""
        self._files[path] = content
        self.writes += 1

    def read(self, path: str) -> bytes | None:
        """Fetch a temporary file, or None if absent."""
        self.reads += 1
        return self._files.get(path)

    def unlink(self, path: str) -> None:
        """Remove a temporary file (missing paths are ignored)."""
        self._files.pop(path, None)

    def clear(self) -> None:
        """Drop every temporary file (client crash)."""
        self._files.clear()

    def __len__(self) -> int:
        return len(self._files)
