"""Eviction policies for the client datum cache.

The seed cache is pure LRU — fine for the paper's compile trace, wrong
for skewed production traffic: under a Zipf hot set with a working set
larger than cache, LRU cycles the long tail through the cache and evicts
hot keys on every cold-key burst (hit-rate collapse).  The classic
remedy is a hybrid score that also weighs *frequency*:

    score = 0.6 * log-normalized frequency + 0.4 * decayed recency

with two refinements (both measurably matter at scale):

* **Logarithmic frequency normalization** — ``log(1+f) / log(1+max_f)``
  over the *current* entries, so one super-popular key cannot collapse
  every other score to ~0;
* **Smooth recency decay** — full credit while fresh, a gentle linear
  ramp to 0.7, then exponential half-life decay, instead of a hard
  recency cutoff.

Ages are measured in cache *accesses* (ticks), not seconds: the cache
deliberately has no clock, and tick ages keep eviction deterministic
under both the simulated kernel and the asyncio runtime.

Lease protection: evicting an entry the client still holds a valid lease
on is pure waste — the lease entitles the client to free local hits, and
the next read pays a full refetch round trip anyway.  The policy
therefore never selects a protected entry while any unprotected entry
exists.  Capacity stays a hard bound: if *every* entry is protected the
lowest-scoring one is evicted regardless (counted in
:attr:`LruLfuPolicy.forced_evictions`).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable

from repro.types import DatumId

#: Eviction-policy names understood across configs, scenarios and CLIs.
EVICTION_KINDS = ("lru", "lru-lfu")


def recency_score(
    age: float,
    fresh: float = 8.0,
    mid: float = 64.0,
    halflife: float = 256.0,
) -> float:
    """The smooth recency component: 1.0 while fresh, then decaying.

    * ``age <= fresh`` — 1.0 (just touched);
    * ``fresh < age <= mid`` — linear ramp from 1.0 down to 0.7;
    * ``age > mid`` — exponential decay from 0.7 with the given
      half-life.

    Monotonically non-increasing in ``age`` and continuous at both
    seams; ages are in cache accesses (ticks).
    """
    if age <= fresh:
        return 1.0
    if age <= mid:
        return 1.0 - 0.3 * (age - fresh) / (mid - fresh)
    return 0.7 * 2.0 ** (-(age - mid) / halflife)


def frequency_score(count: int, max_count: int) -> float:
    """Log-normalized frequency: ``log(1+count) / log(1+max_count)``.

    Monotonically non-decreasing in ``count`` for a fixed ``max_count``;
    equals 1.0 for the most-accessed entry.
    """
    if count < 0:
        raise ValueError(f"negative access count: {count}")
    ceiling = max(1, max_count, count)
    return math.log1p(count) / math.log1p(ceiling)


class LruLfuPolicy:
    """Hybrid LRU+LFU score-based eviction.

    Args:
        freq_weight: weight of the frequency component (default 0.6).
        recency_weight: weight of the recency component (default 0.4).
        fresh: tick age below which recency stays 1.0.
        mid: tick age where the linear ramp hands over to exponential
            decay.
        halflife: exponential-decay half-life in ticks.
        protected: zero-argument callable returning the datums that must
            not be evicted while an unprotected candidate exists — the
            client engine passes its lease set's
            :meth:`~repro.lease.holder.LeaseSet.held_datums`.

    Attributes:
        forced_evictions: victims selected while *every* candidate was
            protected (capacity is a hard bound; see module docstring).
    """

    def __init__(
        self,
        freq_weight: float = 0.6,
        recency_weight: float = 0.4,
        fresh: float = 8.0,
        mid: float = 64.0,
        halflife: float = 256.0,
        protected: Callable[[], Iterable[DatumId]] | None = None,
    ):
        if freq_weight < 0 or recency_weight < 0 or freq_weight + recency_weight <= 0:
            raise ValueError(
                f"weights must be non-negative and sum positive: "
                f"{freq_weight}, {recency_weight}"
            )
        if not 0 < fresh < mid:
            raise ValueError(f"need 0 < fresh < mid: {fresh}, {mid}")
        if halflife <= 0:
            raise ValueError(f"halflife must be positive: {halflife}")
        self.freq_weight = freq_weight
        self.recency_weight = recency_weight
        self.fresh = fresh
        self.mid = mid
        self.halflife = halflife
        self.forced_evictions = 0
        self._protected = protected
        self._counts: dict[DatumId, int] = {}
        self._last: dict[DatumId, int] = {}
        self._tick = 0

    # -- bookkeeping (driven by FileCache) -------------------------------------

    def touch(self, datum: DatumId) -> None:
        """Record one access (hit or admission) to ``datum``."""
        self._tick += 1
        self._counts[datum] = self._counts.get(datum, 0) + 1
        self._last[datum] = self._tick

    def forget(self, datum: DatumId) -> None:
        """Drop all state for an evicted or removed datum."""
        self._counts.pop(datum, None)
        self._last.pop(datum, None)

    def clear(self) -> None:
        """Forget everything (cache cleared on crash)."""
        self._counts.clear()
        self._last.clear()
        self._tick = 0

    def access_count(self, datum: DatumId) -> int:
        """Accesses recorded for ``datum`` (0 if never touched)."""
        return self._counts.get(datum, 0)

    def age_of(self, datum: DatumId) -> float:
        """Ticks since ``datum`` was last touched."""
        return float(self._tick - self._last.get(datum, 0))

    # -- scoring ---------------------------------------------------------------

    def score(self, datum: DatumId, max_count: int | None = None) -> float:
        """The entry's retention score — the *lowest* score is evicted."""
        if max_count is None:
            max_count = max(self._counts.values(), default=1)
        freq = frequency_score(self._counts.get(datum, 0), max_count)
        rec = recency_score(
            self.age_of(datum), self.fresh, self.mid, self.halflife
        )
        return self.freq_weight * freq + self.recency_weight * rec

    def select_victim(self, candidates: Iterable[DatumId]) -> DatumId:
        """The candidate to evict: lowest score, protected entries last.

        Deterministic: score ties break on the datum's string form, so
        eviction order is reproducible across runs and worker processes.
        """
        pool = list(candidates)
        if not pool:
            raise ValueError("no candidates to evict")
        if self._protected is not None:
            shielded = set(self._protected())
            open_pool = [d for d in pool if d not in shielded]
            if open_pool:
                pool = open_pool
            else:
                self.forced_evictions += 1
        max_count = max(
            (self._counts.get(d, 0) for d in pool), default=1
        )
        return min(pool, key=lambda d: (self.score(d, max_count), str(d)))


def make_policy(
    eviction: str,
    protected: Callable[[], Iterable[DatumId]] | None = None,
) -> LruLfuPolicy | None:
    """Policy instance for a config string (None = the built-in LRU)."""
    if eviction == "lru":
        return None
    if eviction == "lru-lfu":
        return LruLfuPolicy(protected=protected)
    raise ValueError(
        f"unknown eviction policy {eviction!r} (have: {', '.join(EVICTION_KINDS)})"
    )


__all__ = [
    "EVICTION_KINDS",
    "LruLfuPolicy",
    "frequency_score",
    "make_policy",
    "recency_score",
]
