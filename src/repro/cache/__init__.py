"""Client-side caching substrate.

* :class:`~repro.cache.filecache.FileCache` — an LRU, write-through datum
  cache with version-floor invalidation (a client that approves a write
  must not re-admit older data for that datum).
* :class:`~repro.cache.filecache.TempFileStore` — client-local storage for
  temporary files, which V keeps out of the file server entirely (§2, §3.2:
  temp files receive the majority of writes, so this is what makes
  write-through affordable).
"""

from repro.cache.filecache import CacheEntry, CacheStats, FileCache, TempFileStore

__all__ = ["FileCache", "CacheEntry", "CacheStats", "TempFileStore"]
