"""Client-side caching substrate.

* :class:`~repro.cache.filecache.FileCache` — a capacity-bounded,
  write-through datum cache with version-floor invalidation (a client
  that approves a write must not re-admit older data for that datum).
* :mod:`repro.cache.eviction` — the eviction-policy axis: plain LRU (the
  default, byte-identical to the seed) or hybrid LRU+LFU score-based
  eviction (:class:`~repro.cache.eviction.LruLfuPolicy`) for skewed,
  larger-than-cache workloads.
* :class:`~repro.cache.filecache.TempFileStore` — client-local storage for
  temporary files, which V keeps out of the file server entirely (§2, §3.2:
  temp files receive the majority of writes, so this is what makes
  write-through affordable).
"""

from repro.cache.eviction import EVICTION_KINDS, LruLfuPolicy, make_policy
from repro.cache.filecache import CacheEntry, CacheStats, FileCache, TempFileStore

__all__ = [
    "EVICTION_KINDS",
    "FileCache",
    "CacheEntry",
    "CacheStats",
    "LruLfuPolicy",
    "TempFileStore",
    "make_policy",
]
