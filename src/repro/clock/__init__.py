"""Clock subsystem.

Leases are a *time-based* mechanism: correctness rests on hosts having
clocks whose mutual error is bounded by an allowance ``epsilon`` (or, more
weakly, whose drift rate is bounded).  This package provides:

* :class:`~repro.clock.base.Clock` — the minimal interface the protocol
  engines consume (a ``now()`` in seconds).
* :class:`~repro.clock.sim.SimClock` — a clock slaved to the discrete-event
  kernel, with configurable constant offset (skew) and rate error (drift) so
  clock faults can be injected (paper §5).
* :class:`~repro.clock.system.MonotonicClock` — wall-clock time for the
  asyncio runtime.
* :class:`~repro.clock.faulty.ManualClock` / ``SteppingClock`` — test
  doubles and fault models.
* :func:`~repro.clock.sync.cristian_offset` — the offset/error-bound
  estimate used to justify a configured ``epsilon``.
* :func:`~repro.clock.sync.safe_local_expiry` — the duration-based expiry
  rule (§5: a term "can be communicated as its duration") that keeps the
  client's view of expiry conservatively earlier than the server's.
"""

from repro.clock.base import Clock, TimeSource
from repro.clock.faulty import ManualClock, SteppingClock
from repro.clock.sim import SimClock
from repro.clock.sync import ClockSyncEstimate, cristian_offset, safe_local_expiry
from repro.clock.system import MonotonicClock

__all__ = [
    "Clock",
    "TimeSource",
    "SimClock",
    "MonotonicClock",
    "ManualClock",
    "SteppingClock",
    "ClockSyncEstimate",
    "cristian_offset",
    "safe_local_expiry",
]
