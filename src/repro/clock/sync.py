"""Clock-synchronization estimates and the safe duration-based expiry rule.

The paper's correctness condition is that clocks are synchronized within an
allowance ``epsilon`` that is small relative to lease terms, or — as a
minimum — that clocks have a known bounded drift, in which case "the lease
term can be communicated as its duration" (§5).  This module provides the
two corresponding tools:

* :func:`cristian_offset` — Cristian-style offset estimation from one
  request/response exchange, with an explicit error bound; a deployment can
  use the bound to pick (or validate) ``epsilon``.
* :func:`safe_local_expiry` — the client-side rule for converting a term
  *duration* into a local expiry instant that is guaranteed not to outlive
  the server's view of the lease.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockSyncEstimate:
    """Result of a one-shot clock synchronization probe.

    Attributes:
        offset: estimated ``remote_clock - local_clock`` in seconds.
        error_bound: half-width of the interval guaranteed to contain the
            true offset (assuming symmetric or at least bounded one-way
            delays within the measured round trip).
        round_trip: the measured round-trip time.
    """

    offset: float
    error_bound: float
    round_trip: float


def cristian_offset(
    t_request_local: float,
    t_server_remote: float,
    t_reply_local: float,
    min_one_way: float = 0.0,
) -> ClockSyncEstimate:
    """Estimate the remote-minus-local clock offset from one exchange.

    Args:
        t_request_local: local clock when the probe was sent.
        t_server_remote: remote clock when the server stamped the reply.
        t_reply_local: local clock when the reply arrived.
        min_one_way: a known lower bound on one-way network delay; a nonzero
            bound tightens the error estimate.

    Returns:
        A :class:`ClockSyncEstimate`.  The classic Cristian argument: the
        server stamped its clock somewhere inside the round trip, so the
        true offset lies within ``rtt/2 - min_one_way`` of the midpoint
        estimate.

    Raises:
        ValueError: if the reply does not follow the request.
    """
    if t_reply_local < t_request_local:
        raise ValueError("reply precedes request on the local clock")
    round_trip = t_reply_local - t_request_local
    midpoint = t_request_local + round_trip / 2.0
    offset = t_server_remote - midpoint
    error_bound = round_trip / 2.0 - min_one_way
    if error_bound < 0:
        raise ValueError(
            f"min_one_way={min_one_way} exceeds half the measured round trip"
        )
    return ClockSyncEstimate(offset=offset, error_bound=error_bound, round_trip=round_trip)


def safe_local_expiry(
    t_send_local: float,
    term: float,
    epsilon: float,
    drift_bound: float = 0.0,
) -> float:
    """Convert a lease *duration* into a conservative local expiry instant.

    The client must stop trusting a lease no later (in real time) than the
    server starts treating it as expired.  Anchoring the duration at the
    *request send* time is safe because the server's grant can only happen
    after the request was sent:

    ``expiry_local = t_send_local + term * (1 - drift_bound) - epsilon``

    With clock offsets bounded by ``epsilon`` and client rate error bounded
    by ``drift_bound``, the client's validity window ends at real time
    ``<= real_send + term``, while the server's window ends at real time
    ``>= real_grant + term - epsilon``; since the protocol's effective term
    already subtracts ``epsilon`` and the message delays, the client is
    always conservative.  See ``tests/clock/test_sync.py`` for the checked
    algebra.

    Args:
        t_send_local: client's clock when the lease request was sent.
        term: lease duration granted by the server, in seconds.
        epsilon: clock-skew allowance.
        drift_bound: bound on the client clock's rate error (e.g. ``1e-4``
            for 100 ppm).  Zero when relying on synchronized clocks alone.

    Returns:
        The local clock reading after which the lease must not be used.
    """
    if term < 0:
        raise ValueError(f"negative lease term: {term}")
    if epsilon < 0:
        raise ValueError(f"negative epsilon: {epsilon}")
    if not 0 <= drift_bound < 1:
        raise ValueError(f"drift_bound must be in [0, 1): {drift_bound}")
    return t_send_local + term * (1.0 - drift_bound) - epsilon


def safe_waitout(term: float, epsilon: float, drift_bound: float = 0.0) -> float:
    """The local duration after which a *remote* party's lease has expired.

    The mirror image of :func:`safe_local_expiry`: there a lease *holder*
    shrinks the term so it stops trusting early; here a party waiting
    **out** someone else's lease (a restarted server waiting out its
    pre-crash grants, a new master waiting out its predecessor's) must
    stretch the wait so the remote validity window has provably closed
    even when the local clock runs fast and ahead:

    ``wait_local = term * (1 + drift_bound) + epsilon``

    A fast local clock (rate error up to ``drift_bound``) reads ``T``
    local seconds in as little as ``T / (1 + drift_bound)`` real seconds,
    so the real wait after scaling is at least ``term``; the ``epsilon``
    skew allowance then covers the anchoring offset between the two
    clocks.

    Args:
        term: the longest lease duration the remote party may still hold.
        epsilon: clock-skew allowance.
        drift_bound: bound on the local clock's rate error.

    Returns:
        The local-clock duration to wait before the remote lease is
        provably expired.
    """
    if term < 0:
        raise ValueError(f"negative lease term: {term}")
    if epsilon < 0:
        raise ValueError(f"negative epsilon: {epsilon}")
    if not 0 <= drift_bound < 1:
        raise ValueError(f"drift_bound must be in [0, 1): {drift_bound}")
    return term * (1.0 + drift_bound) + epsilon
