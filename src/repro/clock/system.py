"""Wall-clock time for the real-time (asyncio) runtime."""

from __future__ import annotations

import time


class MonotonicClock:
    """A clock backed by :func:`time.monotonic`.

    Monotonic time is the right base for lease expiry in a real process: it
    cannot jump backward under NTP adjustments.  An optional ``offset``
    supports testing and aligning multiple processes started at different
    times.
    """

    def __init__(self, offset: float = 0.0):
        self.offset = offset

    def now(self) -> float:
        """Return monotonic seconds plus the configured offset."""
        return time.monotonic() + self.offset
