"""Simulated host clocks with injectable skew and drift."""

from __future__ import annotations

from repro.clock.base import TimeSource


class SimClock:
    """A host clock slaved to a simulation time source.

    The local reading is ``offset + (1 + drift) * source.now``:

    * ``offset`` models constant skew between hosts (bounded by the
      protocol's ``epsilon`` allowance in a healthy system);
    * ``drift`` models rate error.  A *positive* drift on the server (clock
      runs fast) or a *negative* drift on a client (clock runs slow) are the
      two failure modes the paper identifies as able to break consistency
      (§5); the opposite errors only cost extra traffic.
    """

    def __init__(self, source: TimeSource, offset: float = 0.0, drift: float = 0.0):
        self._source = source
        self.offset = offset
        self.drift = drift

    def now(self) -> float:
        """Return the local clock reading in seconds."""
        return self.offset + (1.0 + self.drift) * self._source.now

    def __repr__(self) -> str:
        return f"SimClock(offset={self.offset!r}, drift={self.drift!r})"
