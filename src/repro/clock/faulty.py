"""Clock test doubles and fault models."""

from __future__ import annotations


class ManualClock:
    """A clock advanced explicitly by the test or application.

    Useful for unit-testing lease bookkeeping without a simulator.
    """

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        """Current manual time."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0:
            raise ValueError(f"cannot move a clock backward (delta={delta})")
        self._now += delta
        return self._now

    def set(self, value: float) -> None:
        """Jump the clock to an absolute value (may move backward: a fault)."""
        self._now = value


class SteppingClock:
    """A clock that applies a one-time step at a scheduled underlying time.

    Models an operator or a buggy time daemon stepping the clock: before
    ``step_at`` (as read from the wrapped clock) readings are unchanged;
    afterwards they include ``step`` (positive = jumped forward).
    """

    def __init__(self, inner, step_at: float, step: float):
        self._inner = inner
        self.step_at = step_at
        self.step = step

    def now(self) -> float:
        """Inner clock reading, plus the step once past the threshold."""
        base = self._inner.now()
        if base >= self.step_at:
            return base + self.step
        return base
