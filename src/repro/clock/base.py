"""Clock interfaces consumed by the protocol engines."""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class TimeSource(Protocol):
    """Anything exposing the current time as a ``now`` attribute (seconds).

    The discrete-event kernel satisfies this protocol, which lets
    :class:`~repro.clock.sim.SimClock` depend on it without importing the
    simulator package.
    """

    @property
    def now(self) -> float:
        """Current time in seconds."""
        ...


@runtime_checkable
class Clock(Protocol):
    """The clock interface used throughout the protocol code.

    ``now()`` returns this host's *local* opinion of the current time in
    seconds.  Different hosts may disagree; the lease protocol only assumes
    the disagreement is bounded by the configured ``epsilon``.
    """

    def now(self) -> float:
        """This host's local opinion of the current time, in seconds."""
        ...
