"""Generate and inspect workload traces from the command line.

Usage::

    python -m repro.workload v --duration 3600 --out trace.txt
    python -m repro.workload poisson --clients 8 --sharing 2 --out p.txt
    python -m repro.workload unix --duration 1800 --out u.txt
    python -m repro.workload model --preset flash-crowd --out f.txt
    python -m repro.workload stats trace.txt
"""

from __future__ import annotations

import argparse
import sys

from repro.workload.events import load_trace, save_trace, trace_stats
from repro.workload.models import PRESETS, generate_trace, preset
from repro.workload.poisson import PoissonWorkload
from repro.workload.unixtrace import UnixTraceConfig, generate_unix_trace
from repro.workload.vtrace import VTraceConfig, generate_v_trace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.workload", description="Generate or inspect workload traces."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, helptext in (
        ("v", "synthetic V compile trace (Table 2 calibration)"),
        ("unix", "Unix block-level variant of the V trace"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument("--duration", type=float, default=3600.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--out", default="-", help="output file ('-' = stdout)")

    p = sub.add_parser("poisson", help="the analytic model's Poisson workload")
    p.add_argument("--clients", type=int, default=20)
    p.add_argument("--sharing", type=int, default=1)
    p.add_argument("--read-rate", type=float, default=0.864)
    p.add_argument("--write-rate", type=float, default=0.040)
    p.add_argument("--duration", type=float, default=600.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="-")

    p = sub.add_parser("model", help="production-shaped traffic model (repro.workload.models)")
    p.add_argument(
        "--preset", default="zipf", choices=sorted(PRESETS), help="named WorkloadSpec"
    )
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--duration", type=float, default=120.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="-")

    p = sub.add_parser("stats", help="measure a saved trace (the Table 2 view)")
    p.add_argument("path")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "stats":
        with open(args.path) as fp:
            stats = trace_stats(load_trace(fp))
        print(f"duration:           {stats.duration:.1f} s")
        print(f"reads:              {stats.n_reads} ({stats.read_rate:.3f}/s)")
        print(f"writes:             {stats.n_writes} ({stats.write_rate:.4f}/s)")
        print(f"read/write ratio:   {stats.read_write_ratio:.1f}")
        print(f"temp ops (local):   {stats.n_temp_ops}")
        print(f"installed reads:    {stats.installed_read_fraction:.1%}")
        print(f"installed writes:   {stats.installed_write_count}")
        return 0

    if args.command == "v":
        records = generate_v_trace(VTraceConfig(duration=args.duration, seed=args.seed))
    elif args.command == "model":
        records = generate_trace(
            preset(args.preset), args.clients, args.duration, seed=args.seed
        )
    elif args.command == "unix":
        records = generate_unix_trace(
            UnixTraceConfig(
                base=VTraceConfig(duration=args.duration, seed=args.seed),
                seed=args.seed,
            )
        )
    else:
        records = PoissonWorkload(
            n_clients=args.clients,
            sharing=args.sharing,
            read_rate=args.read_rate,
            write_rate=args.write_rate,
            duration=args.duration,
            seed=args.seed,
        ).generate()

    if args.out == "-":
        try:
            save_trace(records, sys.stdout)
        except BrokenPipeError:
            return 0  # downstream pipe (e.g. head) closed early; not an error
    else:
        with open(args.out, "w") as fp:
            save_trace(records, fp)
        print(f"wrote {len(records)} records to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
