"""Production-shaped traffic models (the workloads that actually break caches).

The paper's analysis (§4) rests on Poisson arrivals and the V compile
trace.  Real fleets add four failure modes that neither exhibits — skewed
hot-key popularity (Zipf/Pareto 80/20), diurnal load swings, flash crowds
piling onto one installed file, and working sets far larger than cache —
and lease-term / eviction-policy choices only differentiate under exactly
this kind of skewed, contended access.

:class:`WorkloadSpec` captures one such model as plain, serializable
data.  A single spec drives all four consumers of workload in this
repository through the adapters below:

* :func:`sample_events` — the canonical seeded event stream (the other
  adapters are thin views of it);
* :func:`generate_trace` — :class:`~repro.workload.events.TraceRecord`
  lists for the trace-driven simulator and the experiment grids;
* :func:`scenario_ops` — ``(at, client, kind, file)`` tuples for the
  ``repro.check`` scenario grammar (wrapped into
  :class:`~repro.check.scenario.Op` by the generator);
* :func:`bench_schedule` — per-client op lists in the shape the asyncio
  load harness (:mod:`repro.runtime.bench`) drives.

Determinism contract: every adapter is a pure function of
``(spec, shape, seed)``.  Each client's arrival stream is drawn from its
own ``random.Random(f"repro.workload.models/{seed}/{client}/...")``, so
streams are independent of client count and generation order — the
golden-digest tests (``tests/workload/test_models_golden.py``) pin the
byte-exact output per preset.

Timing fields (``flash_at``, ``flash_width``, ``diurnal_periods``) are
*fractions of the run duration*, not absolute seconds, so the same model
definition scales from a 20-second scenario to a one-hour figure sweep.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, fields

from repro.errors import ScenarioError
from repro.types import FileClass
from repro.workload.events import TraceRecord

#: Popularity-distribution kinds a spec may name.
POPULARITY_KINDS = ("uniform", "zipf", "pareto")

#: Seed namespace for every RNG this module derives.
_NS = "repro.workload.models"


# -- key-popularity samplers ---------------------------------------------------


class ZipfSampler:
    """Zipf(alpha) popularity over ``n_keys`` ranked keys.

    Key ``k`` (0-based rank) has weight proportional to
    ``1 / (k + 1) ** alpha``; weights are normalized to sum to 1 and
    sampled by inverse-CDF lookup, so draws cost ``O(log n)``.
    """

    def __init__(self, n_keys: int, alpha: float = 1.1):
        if n_keys < 1:
            raise ValueError(f"need at least one key: {n_keys}")
        if alpha <= 0:
            raise ValueError(f"zipf alpha must be positive: {alpha}")
        self.n_keys = n_keys
        self.alpha = alpha
        raw = [1.0 / (k + 1) ** alpha for k in range(n_keys)]
        total = sum(raw)
        self.weights = [w / total for w in raw]
        self._cdf = _cumulative(self.weights)

    def sample(self, rng: random.Random) -> int:
        """Draw one key index."""
        return bisect.bisect_right(self._cdf, rng.random(), hi=self.n_keys - 1)


class ParetoSampler:
    """The 80/20 hot-set popularity: ``hot_mass`` of traffic on the first
    ``hot_fraction`` of keys, the remainder spread uniformly over the rest.

    With one key (or a hot set covering every key) the distribution
    degenerates to uniform, which keeps the tail-mass invariant trivially
    true.
    """

    def __init__(self, n_keys: int, hot_fraction: float = 0.2, hot_mass: float = 0.8):
        if n_keys < 1:
            raise ValueError(f"need at least one key: {n_keys}")
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError(f"hot_fraction out of (0, 1]: {hot_fraction}")
        if not 0.0 < hot_mass < 1.0:
            raise ValueError(f"hot_mass out of (0, 1): {hot_mass}")
        self.n_keys = n_keys
        self.hot_fraction = hot_fraction
        self.hot_mass = hot_mass
        self.hot_keys = max(1, round(n_keys * hot_fraction))
        cold_keys = n_keys - self.hot_keys
        if cold_keys == 0:
            self.weights = [1.0 / n_keys] * n_keys
        else:
            hot_w = hot_mass / self.hot_keys
            cold_w = (1.0 - hot_mass) / cold_keys
            if hot_w < cold_w:
                # An inverted "hot" set (hot keys lighter per key than the
                # tail) is a misconfiguration, not a distribution.
                raise ValueError(
                    f"inverted hot set: {self.hot_keys}/{n_keys} hot keys "
                    f"carrying only {hot_mass} of the mass"
                )
            self.weights = [hot_w] * self.hot_keys + [cold_w] * cold_keys
        self._cdf = _cumulative(self.weights)

    def sample(self, rng: random.Random) -> int:
        """Draw one key index."""
        return bisect.bisect_right(self._cdf, rng.random(), hi=self.n_keys - 1)


class UniformSampler:
    """Equal popularity over ``n_keys`` keys (the legacy behaviour)."""

    def __init__(self, n_keys: int):
        if n_keys < 1:
            raise ValueError(f"need at least one key: {n_keys}")
        self.n_keys = n_keys
        self.weights = [1.0 / n_keys] * n_keys

    def sample(self, rng: random.Random) -> int:
        """Draw one key index."""
        return rng.randrange(self.n_keys)


def _cumulative(weights: list[float]) -> list[float]:
    cdf, acc = [], 0.0
    for w in weights:
        acc += w
        cdf.append(acc)
    return cdf


# -- the model definition ------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """One composable traffic model, as plain data.

    Attributes:
        kind: key-popularity distribution (``uniform``/``zipf``/``pareto``).
        n_files: working-set size (key space the popularity ranks).
        alpha: Zipf exponent (``kind="zipf"``).
        hot_fraction: hot-set size as a fraction of keys (``pareto``).
        hot_mass: traffic fraction landing on the hot set (``pareto``).
        rate: peak per-client operation rate (ops/second).
        p_write: write probability at the start of the run.
        p_write_end: write probability at the end of the run — the mix
            shifts linearly between the two; negative means constant.
        diurnal_depth: 0 disables; otherwise the arrival rate is thinned
            down to ``(1 - depth)`` of peak at the trough of a cosine
            "day" — a compressed diurnal swing.
        diurnal_periods: number of diurnal cycles across the run.
        flash_at: flash-crowd onset as a fraction of the run duration;
            negative disables the flash.
        flash_width: flash-crowd window width (fraction of duration).
        flash_boost: extra per-client read rate during the window, as a
            multiple of ``rate`` — every client piles onto one file.
        flash_file: the key everyone stampedes (the one installed file).
    """

    kind: str = "uniform"
    n_files: int = 64
    alpha: float = 1.1
    hot_fraction: float = 0.2
    hot_mass: float = 0.8
    rate: float = 2.0
    p_write: float = 0.1
    p_write_end: float = -1.0
    diurnal_depth: float = 0.0
    diurnal_periods: float = 1.0
    flash_at: float = -1.0
    flash_width: float = 0.1
    flash_boost: float = 10.0
    flash_file: int = 0

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check field ranges; raises :class:`ValueError` on nonsense."""
        if self.kind not in POPULARITY_KINDS:
            raise ValueError(f"unknown popularity kind {self.kind!r}")
        if self.n_files < 1:
            raise ValueError(f"need at least one file: {self.n_files}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive: {self.rate}")
        if not 0.0 <= self.p_write <= 1.0:
            raise ValueError(f"p_write out of [0, 1]: {self.p_write}")
        if self.p_write_end > 1.0:
            raise ValueError(f"p_write_end above 1: {self.p_write_end}")
        if not 0.0 <= self.diurnal_depth < 1.0:
            raise ValueError(f"diurnal_depth out of [0, 1): {self.diurnal_depth}")
        if self.diurnal_depth and self.diurnal_periods <= 0:
            raise ValueError(f"diurnal_periods must be positive: {self.diurnal_periods}")
        if self.has_flash:
            if not 0.0 <= self.flash_at < 1.0:
                raise ValueError(f"flash_at out of [0, 1): {self.flash_at}")
            if not 0.0 < self.flash_width <= 1.0:
                raise ValueError(f"flash_width out of (0, 1]: {self.flash_width}")
            if self.flash_boost <= 0:
                raise ValueError(f"flash_boost must be positive: {self.flash_boost}")
            if not 0 <= self.flash_file < self.n_files:
                raise ValueError(f"flash_file out of range: {self.flash_file}")
        # Samplers validate their own parameters.
        self.sampler()

    @property
    def has_flash(self) -> bool:
        """True when the spec schedules a flash crowd."""
        return self.flash_at >= 0.0

    def sampler(self):
        """The key-popularity sampler this spec names."""
        if self.kind == "zipf":
            return ZipfSampler(self.n_files, self.alpha)
        if self.kind == "pareto":
            return ParetoSampler(self.n_files, self.hot_fraction, self.hot_mass)
        return UniformSampler(self.n_files)

    def p_write_at(self, t: float, duration: float) -> float:
        """The write probability at time ``t`` of a ``duration`` run."""
        if self.p_write_end < 0.0 or duration <= 0:
            return self.p_write
        frac = min(1.0, max(0.0, t / duration))
        return self.p_write + (self.p_write_end - self.p_write) * frac

    def rate_factor(self, t: float, duration: float) -> float:
        """Diurnal thinning factor in ``[1 - depth, 1]`` at time ``t``."""
        if not self.diurnal_depth or duration <= 0:
            return 1.0
        phase = 2.0 * math.pi * self.diurnal_periods * t / duration
        # Trough at t=0 so short scenarios see the rate *ramp up*.
        return 1.0 - self.diurnal_depth * (0.5 + 0.5 * math.cos(phase))

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> dict:
        """Plain-data form with default-valued fields pruned.

        Pruning keeps scenario files small and — because a default spec
        serializes to ``{}`` — keeps digests of workload-free scenarios
        unchanged.
        """
        data: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                data[f.name] = value
        return data

    @classmethod
    def from_json(cls, data: dict) -> "WorkloadSpec":
        """Rebuild from :meth:`to_json` output.

        Raises:
            ScenarioError: ``data`` contains a field this model does not
                define.  Unknown fields are *rejected*, never dropped —
                silently ignoring them would replay a different workload
                than the artifact claims to describe.
        """
        if not isinstance(data, dict):
            raise ScenarioError(f"workload must be an object, got {type(data).__name__}")
        known = {f.name: f.type for f in fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ScenarioError(
                f"unknown workload field(s) {unknown}: a replay with these "
                "silently dropped would not reproduce the recorded run"
            )
        kwargs: dict = {}
        for f in fields(cls):
            if f.name not in data:
                continue
            value = data[f.name]
            kwargs[f.name] = str(value) if f.name == "kind" else (
                int(value) if f.name in ("n_files", "flash_file") else float(value)
            )
        spec = cls(**kwargs)
        try:
            spec.validate()
        except ValueError as exc:
            raise ScenarioError(f"invalid workload: {exc}") from exc
        return spec


# -- the canonical event stream ------------------------------------------------


def sample_events(
    spec: WorkloadSpec,
    n_clients: int,
    duration: float,
    seed: int,
) -> list[tuple[float, int, str, int]]:
    """The seeded event stream: time-ordered ``(at, client, kind, file)``.

    Per-client base streams are thinned Poisson processes at the spec's
    (possibly diurnally modulated) rate, with keys drawn from the
    popularity sampler and the read/write mix shifting across the run.
    The flash crowd adds a second read-only stream per client, pinned to
    ``flash_file``, inside the flash window.

    Every stream draws from its own seed-derived RNG, so the events of
    client ``i`` are identical whether the run has 2 clients or 200.
    """
    spec.validate()
    if n_clients < 1:
        raise ValueError(f"need at least one client: {n_clients}")
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration}")
    sampler = spec.sampler()
    events: list[tuple[float, int, str, int]] = []
    for client in range(n_clients):
        rng = random.Random(f"{_NS}/{seed}/{client}/base")
        t = 0.0
        while True:
            t += rng.expovariate(spec.rate)
            if t >= duration:
                break
            if rng.random() >= spec.rate_factor(t, duration):
                continue  # thinned away by the diurnal trough
            kind = "write" if rng.random() < spec.p_write_at(t, duration) else "read"
            file = spec.flash_file if _in_flash(spec, t, duration) and kind == "read" \
                else sampler.sample(rng)
            events.append((t, client, kind, file))
        if spec.has_flash:
            frng = random.Random(f"{_NS}/{seed}/{client}/flash")
            start = spec.flash_at * duration
            end = min(duration, start + spec.flash_width * duration)
            t = start
            while True:
                t += frng.expovariate(spec.rate * spec.flash_boost)
                if t >= end:
                    break
                events.append((t, client, "read", spec.flash_file))
    events.sort()
    return events


def _in_flash(spec: WorkloadSpec, t: float, duration: float) -> bool:
    if not spec.has_flash:
        return False
    start = spec.flash_at * duration
    return start <= t < start + spec.flash_width * duration


# -- consumer adapters ---------------------------------------------------------


def generate_trace(
    spec: WorkloadSpec,
    n_clients: int,
    duration: float,
    seed: int = 0,
    path_prefix: str = "/wl",
) -> list[TraceRecord]:
    """The event stream as trace records (tracesim / experiment grids).

    The flash-crowd target is tagged :data:`FileClass.INSTALLED` — the
    paper's "one installed file" everyone stampedes — so installed-file
    machinery engages when the replay provides a cover manager.
    """
    records = []
    for at, client, kind, file in sample_events(spec, n_clients, duration, seed):
        file_class = (
            FileClass.INSTALLED
            if spec.has_flash and file == spec.flash_file
            else FileClass.NORMAL
        )
        records.append(
            TraceRecord(at, f"c{client}", kind, f"{path_prefix}/f{file}", file_class)
        )
    return records


def scenario_ops(
    spec: WorkloadSpec,
    n_clients: int,
    duration: float,
    seed: int,
) -> list[tuple[float, int, str, int]]:
    """The event stream in scenario-grammar shape (``repro.check``).

    Identical to :func:`sample_events`; named separately so the scenario
    generator's dependency is explicit and greppable.
    """
    return sample_events(spec, n_clients, duration, seed)


def bench_schedule(
    spec: WorkloadSpec,
    clients: int,
    ops: int,
    seed: int,
) -> list[list[tuple]]:
    """Per-client op lists for the asyncio load harness.

    The harness submits each client's ops concurrently (no virtual
    time), so the time axis collapses: the mix shift and flash window
    are applied over the *op index* instead, and reads carry the pool
    index drawn from the popularity sampler.  Writes keep the harness's
    own convention (the client's private file), so the lease economics
    under measurement stay comparable with the pinned schedule.
    """
    spec.validate()
    if clients < 1 or ops < 1:
        raise ValueError(f"need at least one client and one op: {clients}, {ops}")
    sampler = spec.sampler()
    schedule = []
    for client in range(clients):
        rng = random.Random(f"{_NS}/bench/{seed}/{client}")
        plan: list[tuple] = []
        for i in range(ops):
            frac = i / ops
            in_flash = spec.has_flash and (
                spec.flash_at <= frac < spec.flash_at + spec.flash_width
            )
            p_write = spec.p_write_at(frac, 1.0)
            if not in_flash and rng.random() < p_write:
                plan.append(("write",))
            elif in_flash:
                plan.append(("read", spec.flash_file))
            else:
                plan.append(("read", sampler.sample(rng)))
        schedule.append(plan)
    return schedule


# -- presets -------------------------------------------------------------------

#: Named model definitions shared by the CLI, the adversarial scenario
#: grammar, the experiment grids and the golden-digest tests.
PRESETS: dict[str, WorkloadSpec] = {
    "uniform": WorkloadSpec(),
    "zipf": WorkloadSpec(kind="zipf", alpha=1.2, n_files=48, rate=2.0, p_write=0.15),
    "pareto": WorkloadSpec(kind="pareto", hot_fraction=0.2, hot_mass=0.8, n_files=48),
    "diurnal": WorkloadSpec(
        kind="zipf", alpha=1.1, n_files=32, diurnal_depth=0.8, diurnal_periods=2.0
    ),
    "flash-crowd": WorkloadSpec(
        kind="zipf",
        alpha=1.1,
        n_files=8,
        rate=2.5,
        p_write=0.15,
        flash_at=0.35,
        flash_width=0.25,
        flash_boost=10.0,
        flash_file=0,
    ),
    "mix-shift": WorkloadSpec(
        kind="pareto", n_files=24, p_write=0.02, p_write_end=0.5
    ),
}


def preset(name: str) -> WorkloadSpec:
    """Look up a named preset; raises :class:`ValueError` on unknown names."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload preset {name!r} (have: {', '.join(sorted(PRESETS))})"
        ) from None


def with_capacity_ratio(spec: WorkloadSpec, ratio: float) -> int:
    """Cache capacity giving a working-set-to-cache ratio of ``ratio``.

    ``ratio=4.0`` means the working set is four times the cache — the
    capacity-pressure regime where eviction policy differentiates.
    """
    if ratio <= 0:
        raise ValueError(f"ratio must be positive: {ratio}")
    return max(1, round(spec.n_files / ratio))


__all__ = [
    "POPULARITY_KINDS",
    "PRESETS",
    "ParetoSampler",
    "UniformSampler",
    "WorkloadSpec",
    "ZipfSampler",
    "bench_schedule",
    "generate_trace",
    "preset",
    "sample_events",
    "scenario_ops",
    "with_capacity_ratio",
]
