"""Trace records.

A trace is a time-ordered sequence of logical file operations as seen by
the cache — the paper's unit of measurement ("read and write measurements
correspond to when a file is opened for reading or closed (committed) with
writing", §3.2).  Temporary-file operations are tagged so the replay can
keep them client-local, exactly as the V cache does.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from statistics import mean

from repro.types import FileClass


@dataclass(frozen=True)
class TraceRecord:
    """One logical operation.

    Attributes:
        time: seconds from trace start.
        client: issuing cache (``"c0"`` in single-client traces).
        op: ``"read"`` or ``"write"`` (open-for-read / close-with-write).
        path: the file's path; doubles as the datum key in replays.
        file_class: drives installed/temporary special handling.
    """

    time: float
    client: str
    op: str
    path: str
    file_class: FileClass = FileClass.NORMAL

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"bad op {self.op!r}")


def save_trace(records: list[TraceRecord], fp: io.TextIOBase) -> None:
    """Write a trace in a simple whitespace-delimited text format."""
    for r in records:
        fp.write(f"{r.time:.6f} {r.client} {r.op} {r.path} {r.file_class.value}\n")


def load_trace(fp: io.TextIOBase) -> list[TraceRecord]:
    """Read a trace written by :func:`save_trace`."""
    records = []
    for line in fp:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        time_s, client, op, path, class_s = line.split()
        records.append(
            TraceRecord(float(time_s), client, op, path, FileClass(class_s))
        )
    return records


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of a trace (the Table 2 measurements)."""

    duration: float
    n_reads: int
    n_writes: int
    n_temp_ops: int
    read_rate: float
    write_rate: float
    installed_read_fraction: float
    installed_write_count: int
    mean_interarrival: float

    @property
    def read_write_ratio(self) -> float:
        """R/W — the paper's headline workload characteristic."""
        return self.read_rate / self.write_rate if self.write_rate else float("inf")


def trace_stats(records: list[TraceRecord]) -> TraceStats:
    """Measure a trace the way Table 2 measures the V trace.

    Temporary-file operations are excluded from the read/write rates —
    the V cache handles them locally, so they never reach the server.
    """
    if not records:
        raise ValueError("empty trace")
    duration = records[-1].time - records[0].time
    if duration <= 0:
        raise ValueError("trace must span positive time")
    served = [r for r in records if r.file_class is not FileClass.TEMPORARY]
    reads = [r for r in served if r.op == "read"]
    writes = [r for r in served if r.op == "write"]
    installed_reads = [r for r in reads if r.file_class is FileClass.INSTALLED]
    installed_writes = [r for r in writes if r.file_class is FileClass.INSTALLED]
    times = sorted(r.time for r in served)
    gaps = [b - a for a, b in zip(times, times[1:])]
    return TraceStats(
        duration=duration,
        n_reads=len(reads),
        n_writes=len(writes),
        n_temp_ops=len(records) - len(served),
        read_rate=len(reads) / duration,
        write_rate=len(writes) / duration,
        installed_read_fraction=len(installed_reads) / len(reads) if reads else 0.0,
        installed_write_count=len(installed_writes),
        mean_interarrival=mean(gaps) if gaps else 0.0,
    )
