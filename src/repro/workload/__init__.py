"""Workload generation and trace-driven simulation.

* :mod:`repro.workload.events` — trace records and simple (de)serialization.
* :mod:`repro.workload.poisson` — the analytic model's workload: Poisson
  read/write streams per client over files shared by S caches.
* :mod:`repro.workload.vtrace` — a synthetic reconstruction of the paper's
  measurement trace ("recompiling the V file server"): bursty compile
  cycles, installed files ≈ half of all reads with no writes, temporary
  files handled client-locally, calibrated to Table 2's R and W.
* :mod:`repro.workload.tracesim` — a fast trace-driven cache/lease
  simulator producing the *Trace* curve of Figure 1 without the full
  discrete-event stack.
* :mod:`repro.workload.models` — production-shaped traffic models
  (Zipf/Pareto popularity, diurnal swings, flash crowds, read/write mix
  shifts) behind one :class:`~repro.workload.models.WorkloadSpec` that
  drives the scenario grammar, the trace simulator, the asyncio load
  harness and the experiment grids.
"""

from repro.workload.events import TraceRecord, load_trace, save_trace, trace_stats
from repro.workload.models import (
    PRESETS,
    WorkloadSpec,
    bench_schedule,
    generate_trace,
    preset,
    sample_events,
    scenario_ops,
    with_capacity_ratio,
)
from repro.workload.poisson import PoissonWorkload, SharingGroup
from repro.workload.tracesim import TraceSimResult, simulate_trace
from repro.workload.vtrace import VTraceConfig, generate_v_trace

__all__ = [
    "TraceRecord",
    "save_trace",
    "load_trace",
    "trace_stats",
    "PoissonWorkload",
    "SharingGroup",
    "VTraceConfig",
    "generate_v_trace",
    "simulate_trace",
    "TraceSimResult",
    "PRESETS",
    "WorkloadSpec",
    "bench_schedule",
    "generate_trace",
    "preset",
    "sample_events",
    "scenario_ops",
    "with_capacity_ratio",
]
