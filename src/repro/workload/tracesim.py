"""Fast trace-driven cache/lease simulation (the *Trace* curve, Figure 1).

Replays a trace through per-(client, file) lease state and counts the
consistency messages the server would handle, without running the full
discrete-event protocol stack.  The accounting mirrors the analytic model
and the real protocol:

* a read under a valid lease with a valid cached copy: **0 messages**;
* a read needing a fetch or extension: **2 messages** (request + reply),
  and the client-side term is the effective ``t_c`` — the granted term
  shortened by delivery time and epsilon;
* with ``batch_extensions`` (the default, §3.1: "a cache should extend
  together all leases over all files that it still holds") an extension
  renews **every** lease the client holds, so R behaves as the client's
  total read rate — this is what makes the measured curve track the
  single-file model and is the mechanism behind its sharper knee;
* a write: **1 multicast + k replies** where k is the number of *other*
  clients holding valid leases (the writer's approval is implicit); the
  write-through itself is data traffic and not counted;
* a write invalidates the other holders' cached copies (their leases
  survive, so their next read is a 2-message refetch);
* temporary files never reach the server.

Cross-check: ``tests/workload/test_tracesim.py`` validates this fast path
against the full discrete-event simulator, and
``repro.experiments.figure1`` validates it against formula (1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.analytic.params import SystemParams
from repro.types import FileClass
from repro.workload.events import TraceRecord


@dataclass(frozen=True)
class TraceSimResult:
    """Outcome of one trace replay at a fixed lease term.

    Attributes:
        term: the server lease term simulated.
        duration: trace span in seconds.
        n_reads: logical reads replayed (server-visible).
        n_writes: logical writes replayed (server-visible).
        extension_messages: fetch/extension messages at the server.
        approval_messages: write-approval messages at the server.
        total_read_delay: summed consistency delay over reads.
        total_write_delay: summed approval delay over writes.
    """

    term: float
    duration: float
    n_reads: int
    n_writes: int
    extension_messages: int
    approval_messages: int
    total_read_delay: float
    total_write_delay: float

    @property
    def consistency_messages(self) -> int:
        """Total consistency messages (extensions plus approvals)."""
        return self.extension_messages + self.approval_messages

    @property
    def load(self) -> float:
        """Consistency messages per second at the server."""
        return self.consistency_messages / self.duration if self.duration else 0.0

    @property
    def relative_load(self) -> float:
        """Load normalized to the zero-term load (2 messages per read)."""
        zero = 2 * self.n_reads
        return self.consistency_messages / zero if zero else 0.0

    @property
    def mean_added_delay(self) -> float:
        """Mean consistency delay per (read or write) operation."""
        ops = self.n_reads + self.n_writes
        total = self.total_read_delay + self.total_write_delay
        return total / ops if ops else 0.0


@dataclass
class _ClientState:
    """One cache's lease and entry state."""

    #: files with a (possibly expired) holding — the batch-extension set.
    expiry: dict[str, float] = field(default_factory=dict)
    #: files whose cached copy is valid.
    entry_valid: dict[str, bool] = field(default_factory=dict)


def simulate_trace(
    records: list[TraceRecord],
    term: float,
    params: SystemParams,
    batch_extensions: bool = True,
) -> TraceSimResult:
    """Replay ``records`` at server lease term ``term``.

    Args:
        records: time-ordered trace.
        term: server lease term ``t_s`` (0, finite, or ``math.inf``).
        params: message timing and epsilon (rates in ``params`` are unused;
            the trace itself supplies the workload).
        batch_extensions: renew all held leases on each extension (§3.1);
            False models naive per-file extension (the A-BATCH ablation).
    """
    if term < 0:
        raise ValueError(f"negative term: {term}")
    effective = (
        math.inf
        if math.isinf(term)
        else max(0.0, term - params.grant_overhead - params.epsilon)
    )
    round_trip = params.round_trip

    clients: dict[str, _ClientState] = {}
    n_reads = n_writes = 0
    extension_messages = approval_messages = 0
    total_read_delay = total_write_delay = 0.0

    for record in records:
        if record.file_class is FileClass.TEMPORARY:
            continue  # handled entirely by the client cache
        client = clients.setdefault(record.client, _ClientState())
        path = record.path
        t = record.time

        if record.op == "read":
            n_reads += 1
            lease_ok = client.expiry.get(path, -math.inf) > t
            if lease_ok and client.entry_valid.get(path, False):
                continue  # free local hit
            extension_messages += 2
            total_read_delay += round_trip
            if effective > 0:
                new_expiry = t + effective
                if batch_extensions and path in client.expiry:
                    # A known file: the extension request covers every
                    # lease this cache still holds (§3.1).
                    for held in client.expiry:
                        client.expiry[held] = new_expiry
                else:
                    client.expiry[path] = new_expiry
            else:
                client.expiry.pop(path, None)
            client.entry_valid[path] = True
        else:
            n_writes += 1
            others = [
                (name, state)
                for name, state in clients.items()
                if name != record.client and state.expiry.get(path, -math.inf) > t
            ]
            if others:
                # one multicast request + one reply per live holder
                approval_messages += 1 + len(others)
                total_write_delay += (
                    2 * params.m_prop + (len(others) + 3) * params.m_proc
                )
                for _, state in others:
                    state.entry_valid[path] = False
            # the writer's own copy is refreshed by the write-through
            client.entry_valid[path] = client.expiry.get(path, -math.inf) > t

    duration = records[-1].time - records[0].time if len(records) > 1 else 0.0
    return TraceSimResult(
        term=term,
        duration=duration,
        n_reads=n_reads,
        n_writes=n_writes,
        extension_messages=extension_messages,
        approval_messages=approval_messages,
        total_read_delay=total_read_delay,
        total_write_delay=total_write_delay,
    )


def sweep_terms(
    records: list[TraceRecord],
    terms: list[float],
    params: SystemParams,
    batch_extensions: bool = True,
) -> list[TraceSimResult]:
    """Replay the trace at each term (the Figure 1 x-axis sweep)."""
    return [
        simulate_trace(records, term, params, batch_extensions=batch_extensions)
        for term in terms
    ]
