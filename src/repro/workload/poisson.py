"""The analytic model's workload, §3.1.

"The server has one file and N clients for that file, where each client's
reads and writes follow Poisson distributions with rates R and W ...  The
file is shared by S of the caches at each point it is written."

:class:`PoissonWorkload` generalizes slightly: clients are partitioned
into sharing groups of size S, each group sharing one file, and every
client reads its group's file at rate R and writes it at rate W.  With
S = 1 this is N independent clients on N private files — the
configuration whose simulation validates the model in Figure 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.types import FileClass
from repro.workload.events import TraceRecord


@dataclass(frozen=True)
class SharingGroup:
    """One shared file and the clients using it."""

    path: str
    clients: tuple[str, ...]


@dataclass
class PoissonWorkload:
    """Generator for the model workload.

    Attributes:
        n_clients: N.
        read_rate: R (per client, per second).
        write_rate: W (per client, per second).
        sharing: S — group size (must divide n_clients).
        duration: trace length in seconds.
        seed: RNG seed (independent of any simulator seed).
    """

    n_clients: int = 20
    read_rate: float = 0.864
    write_rate: float = 0.040
    sharing: int = 1
    duration: float = 600.0
    seed: int = 0
    groups: list[SharingGroup] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_clients % self.sharing != 0:
            raise ValueError(
                f"sharing {self.sharing} must divide n_clients {self.n_clients}"
            )
        self.groups = []
        for g in range(self.n_clients // self.sharing):
            clients = tuple(
                f"c{g * self.sharing + k}" for k in range(self.sharing)
            )
            self.groups.append(SharingGroup(path=f"/shared/g{g}", clients=clients))

    def client_group(self, client: str) -> SharingGroup:
        """The group (and file) a client belongs to."""
        for group in self.groups:
            if client in group.clients:
                return group
        raise KeyError(client)

    def generate(self) -> list[TraceRecord]:
        """Produce the merged, time-ordered trace."""
        rng = random.Random(self.seed)
        records: list[TraceRecord] = []
        for group in self.groups:
            for client in group.clients:
                records.extend(
                    self._stream(rng, client, group.path, "read", self.read_rate)
                )
                records.extend(
                    self._stream(rng, client, group.path, "write", self.write_rate)
                )
        records.sort(key=lambda r: (r.time, r.client, r.op))
        return records

    def _stream(
        self,
        rng: random.Random,
        client: str,
        path: str,
        op: str,
        rate: float,
    ) -> list[TraceRecord]:
        if rate <= 0:
            return []
        out = []
        t = rng.expovariate(rate)
        while t < self.duration:
            out.append(TraceRecord(t, client, op, path, FileClass.NORMAL))
            t += rng.expovariate(rate)
        return out
