"""Unix-style block-level workload (§3.2's closing discussion).

The V measurements count *logical* reads and writes (an open for reading,
a close with writing), which makes directory operations a large share and
the R/W ratio high.  "Supporting Unix semantics, where read and write
correspond to block-level operations, would give a higher absolute rate
of reads, but a somewhat lower ratio of reads to writes ...  The
performance of leases in such a system would be qualitatively similar;
the higher rate of reads would give the curves a sharper knee, favoring
fairly short terms, while the more frequent writes makes it more
sensitive to sharing."

This generator produces that variant: each logical open expands into a
run of block reads, and each logical commit expands into a run of block
writes, yielding a higher R (block operations per second) and a lower
R/W.  :func:`repro.experiments.unix_variant.run` quantifies the predicted
shifts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.types import FileClass
from repro.workload.events import TraceRecord
from repro.workload.vtrace import VTraceConfig, generate_v_trace


@dataclass(frozen=True)
class UnixTraceConfig:
    """Block-level expansion of the V compile workload.

    Attributes:
        base: the logical-operation trace configuration to expand.
        blocks_per_read: mean file blocks touched per logical open.
        blocks_per_write: mean blocks written per logical commit (file
            writes move more data than directory updates, so this is
            larger — which is what lowers the block-level R/W ratio).
        block_gap: spacing between block operations of one expansion.
        seed: RNG seed for the expansion (independent of ``base.seed``).
    """

    base: VTraceConfig = VTraceConfig()
    blocks_per_read: float = 4.0
    blocks_per_write: float = 16.0
    block_gap: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.blocks_per_read < 1 or self.blocks_per_write < 1:
            raise ValueError("block expansion factors must be >= 1")


def generate_unix_trace(config: UnixTraceConfig | None = None) -> list[TraceRecord]:
    """Expand the logical V trace into block-level operations.

    Directory lookups stay single operations (they are metadata reads at
    either granularity); file opens and commits expand into geometric
    runs of block records against the same file.
    """
    config = config or UnixTraceConfig()
    rng = random.Random(config.seed)
    logical = generate_v_trace(config.base)
    records: list[TraceRecord] = []
    for record in logical:
        if record.file_class is FileClass.TEMPORARY:
            records.append(record)
            continue
        is_directory_touch = "." not in record.path.rsplit("/", 1)[-1]
        if record.op == "read" and is_directory_touch:
            records.append(record)
            continue
        mean = config.blocks_per_read if record.op == "read" else config.blocks_per_write
        # geometric run with the configured mean (support >= 1)
        blocks = 1 + _geometric(rng, mean - 1)
        t = record.time
        for _ in range(blocks):
            records.append(
                TraceRecord(t, record.client, record.op, record.path, record.file_class)
            )
            t += config.block_gap * rng.uniform(0.5, 1.5)
    records.sort(key=lambda r: r.time)
    return records


def _geometric(rng: random.Random, mean: float) -> int:
    """Geometric-ish count with the given (possibly fractional) mean."""
    if mean <= 0:
        return 0
    p = 1.0 / (1.0 + mean)
    count = 0
    while rng.random() > p:
        count += 1
    return count
