"""Command-line entry point: ``python -m repro.check``.

Smoke sweep (the CI gate)::

    python -m repro.check --seeds 50 --out failures/

Long exploration with clock faults::

    python -m repro.check --seeds 500 --mode long --out failures/

Replaying a repro file emitted for a failure::

    python -m repro.check --replay failures/gen-0-17.json

Parallel sweeps fan scenarios across worker processes with output —
report, progress lines, failure artifacts — byte-identical to a serial
run::

    python -m repro.check --seeds 100 --workers auto

Exit status: 0 when no scenario failed an invariant (expected-class
clock violations do not fail the sweep; a replayed scenario exits 0 when
it reproduces its recorded class: failure kinds if any, else violation);
1 when a scenario failed; 2 when the sweep *itself* errored (generator
bug, worker crashes past the retry budget, harness exception); 130 on
interrupt — the worker pool is torn down before exiting either way.
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback

import dataclasses

from repro.cache.eviction import EVICTION_KINDS
from repro.check.explorer import Explorer
from repro.check.generator import ADVERSARIAL_KINDS, GeneratorConfig, adversarial_config
from repro.check.runner import run_scenario
from repro.check.scenario import Scenario
from repro.obs.registry import Registry
from repro.parallel import resolve_workers
from repro.workload.models import PRESETS, preset

#: ``--workload`` choices: the traffic-model presets plus the adversarial
#: families (which pick their own grammar, not just a model).  The
#: ``flash-crowd`` name is in both sets; the adversarial grammar wins.
WORKLOAD_CHOICES = tuple(sorted(set(PRESETS) | set(ADVERSARIAL_KINDS)))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Scenario exploration for the lease protocol: generate "
        "seeded fault schedules, check consistency/liveness/convergence, "
        "shrink failures to minimal repro files.",
    )
    parser.add_argument("--seeds", type=int, default=30, metavar="N",
                        help="number of scenarios to explore (default 30)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="seed namespace; same namespace => same sweep")
    parser.add_argument("--mode", choices=("smoke", "long"), default="smoke",
                        help="grammar preset (smoke: CI budget, no clock "
                        "faults; long: bigger, clock faults on)")
    parser.add_argument("--clock-faults", action="store_true",
                        help="include §5 clock faults in smoke mode")
    parser.add_argument("--batching", action="store_true",
                        help="run clients with the request pipeline on "
                        "(same schedules, batched frames)")
    parser.add_argument("--workload", choices=WORKLOAD_CHOICES, default=None,
                        metavar="MODEL",
                        help="draw op streams from a traffic model "
                        f"({', '.join(WORKLOAD_CHOICES)}) instead of the "
                        "legacy uniform grammar; flash-crowd/stampede/herd "
                        "select the full adversarial grammar")
    parser.add_argument("--eviction", choices=EVICTION_KINDS, default="lru",
                        help="client cache eviction policy for generated "
                        "scenarios (default lru)")
    parser.add_argument("--shards", type=int, default=1, metavar="N",
                        help="lease-server shards (default 1 = the classic "
                        "single server; N>1 consistent-hashes files across "
                        "servers s0..s{N-1})")
    parser.add_argument("--replicas", type=int, default=1, metavar="N",
                        help="lease-authority replication factor (default 1 "
                        "= unreplicated; N>1 runs each authority as a "
                        "PaxosLease replica group r0..r{N-1})")
    parser.add_argument("--out", metavar="DIR", default=None,
                        help="write repro files + traces of failures here")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the machine-readable report here")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging of failures")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="replay one scenario file instead of exploring")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-scenario progress lines")
    parser.add_argument("--workers", default="1", metavar="N|auto",
                        help="worker processes for the sweep (auto = one "
                        "per CPU; default 1 = serial); output is "
                        "byte-identical either way")
    return parser


def _replay(path: str, quiet: bool) -> int:
    """Re-run a scenario file; report whether its failure reproduces."""
    scenario = Scenario.load(path)
    result = run_scenario(scenario)
    if not quiet:
        print(f"replay {scenario.name}: verdict={result.verdict} "
              f"events={scenario.event_count} reads={result.reads_checked} "
              f"fingerprint={result.fingerprint[:16]}")
        for line in result.violations:
            print(f"  violation: {line}")
        for line in result.liveness_failures + result.convergence_failures:
            print(f"  invariant: {line}")
    # A repro file "reproduces" when the replay is not a clean pass.
    return 0 if result.verdict != "pass" else 1


def main(argv: list[str] | None = None) -> int:
    """Run the CLI; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    if args.replay is not None:
        return _replay(args.replay, args.quiet)

    if args.workload in ADVERSARIAL_KINDS:
        config = dataclasses.replace(
            adversarial_config(args.workload, eviction=args.eviction),
            batching=args.batching,
        )
    else:
        if args.mode == "long":
            config = GeneratorConfig.long(batching=args.batching)
        else:
            config = GeneratorConfig.smoke(
                clock_faults=args.clock_faults, batching=args.batching
            )
        if args.workload is not None:
            config = dataclasses.replace(config, workload=preset(args.workload))
        if args.eviction != "lru":
            config = dataclasses.replace(config, eviction=args.eviction)
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.shards != 1:
        config = dataclasses.replace(config, shards=args.shards)
    if args.replicas < 1:
        print(f"error: --replicas must be >= 1, got {args.replicas}", file=sys.stderr)
        return 2
    if args.replicas != 1:
        config = dataclasses.replace(config, replicas=args.replicas)

    registry = Registry()
    explorer = Explorer(
        base_seed=args.base_seed,
        config=config,
        out_dir=args.out,
        shrink=not args.no_shrink,
        registry=registry,
    )

    def progress(outcome) -> None:
        if args.quiet:
            return
        result = outcome.result
        line = (f"[{outcome.index:4d}] {outcome.scenario.name:<16} "
                f"{result.verdict:<9} ops={result.ops_submitted:<4} "
                f"faults={len(outcome.scenario.faults):<2} "
                f"reads={result.reads_checked}")
        if result.failure_kinds:
            line += f"  FAILED: {', '.join(result.failure_kinds)}"
            if outcome.shrunk is not None:
                line += (f" (shrunk {outcome.shrunk.original_events} -> "
                         f"{outcome.shrunk.events} events)")
        print(line)

    try:
        workers = resolve_workers(args.workers)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        report = explorer.explore(args.seeds, progress=progress, workers=workers)
    except KeyboardInterrupt:
        # The pool's context manager already force-terminated and joined
        # every worker before the interrupt propagated here.
        print("interrupted: sweep aborted, worker pool torn down",
              file=sys.stderr)
        return 130
    except Exception:
        # A sweep *error* (generator bug, worker crash budget exhausted,
        # harness exception) is not a scenario failure: report loudly and
        # exit non-zero so CI cannot mistake a broken sweep for a clean one.
        print("sweep error:", file=sys.stderr)
        traceback.print_exc()
        return 2

    counters = registry.snapshot()["counters"]
    print(f"explored {report.scenarios} scenarios (base seed "
          f"{report.base_seed}): {report.passed} passed, "
          f"{report.violations} expected-class violations, "
          f"{report.failed} failed  "
          f"[shrink runs: {counters.get('check.shrink_runs', 0)}]")
    for outcome in report.failures:
        print(f"  failure {outcome.scenario.name}: "
              f"{', '.join(outcome.result.failure_kinds)}"
              + (f" -> {outcome.repro_path}" if outcome.repro_path else ""))

    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
