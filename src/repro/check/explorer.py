"""Budgeted scenario exploration with automatic failure minimization.

The :class:`Explorer` is the harness's driver loop: generate scenario
``i``, run it, classify the verdict, and — on an invariant failure —
shrink it to a minimal reproduction, write the repro scenario file, and
capture a full observability trace of the failing run.  Exploration is
deterministic in ``(base_seed, n)``: the same sweep always produces the
same verdicts, which is what lets CI treat "0 failures out of N" as a
regression gate rather than a coin flip.

Observability: when given a trace bus the explorer emits one
``check.run`` event per scenario and a ``check.shrink`` event per
minimization; when given a metrics registry it maintains
``check.scenarios`` / ``check.passed`` / ``check.violations`` /
``check.failed`` / ``check.shrink_runs`` counters.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.check.generator import GeneratorConfig, ScenarioGenerator
from repro.check.runner import RunResult, run_scenario
from repro.check.scenario import Scenario
from repro.check.shrink import ShrinkResult, shrink_scenario, strip_unused
from repro.obs.bus import TraceBus
from repro.obs.events import CHECK_RUN, CHECK_SHRINK


@dataclass
class ScenarioOutcome:
    """Everything the explorer learned about one scenario.

    Attributes:
        index: the scenario's index in the sweep.
        scenario: the generated scenario.
        result: the run result (verdict, evidence).
        shrunk: the minimization outcome, when the run failed and
            shrinking was enabled.
        repro_path: where the minimal scenario file was written.
        trace_path: where the failing run's obs trace was written.
    """

    index: int
    scenario: Scenario
    result: RunResult
    shrunk: ShrinkResult | None = None
    repro_path: str | None = None
    trace_path: str | None = None


@dataclass
class ExplorationReport:
    """Aggregate verdict of one exploration sweep.

    Attributes:
        base_seed: the sweep's seed namespace.
        scenarios: scenarios executed.
        passed: runs with no violations and no invariant failures.
        violations: runs whose only finding was an expected-class clock
            violation (scenario tagged ``may_violate``).
        failed: runs that failed an invariant — these are protocol or
            harness bugs and fail CI.
        failures: the failing outcomes, with shrink artifacts.
        verdicts: per-scenario verdict strings, in index order.
    """

    base_seed: int
    scenarios: int = 0
    passed: int = 0
    violations: int = 0
    failed: int = 0
    failures: list[ScenarioOutcome] = field(default_factory=list)
    verdicts: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no scenario failed an invariant."""
        return self.failed == 0

    def to_json(self) -> dict:
        """Plain-data summary (for the CLI's ``--json`` report)."""
        return {
            "base_seed": self.base_seed,
            "scenarios": self.scenarios,
            "passed": self.passed,
            "violations": self.violations,
            "failed": self.failed,
            "verdicts": list(self.verdicts),
            "failures": [
                {
                    "index": o.index,
                    "name": o.scenario.name,
                    "failure_kinds": list(o.result.failure_kinds),
                    "events_before": o.scenario.event_count,
                    "events_after": o.shrunk.events if o.shrunk else None,
                    "repro": o.repro_path,
                    "trace": o.trace_path,
                }
                for o in self.failures
            ],
        }


class Explorer:
    """Runs N generated scenarios and minimizes whatever fails.

    Args:
        base_seed: seed namespace handed to the generator.
        config: grammar preset (default: smoke without clock faults, so
            every violation is a true failure).
        out_dir: directory for repro files and traces of failures;
            created on first failure.  None disables artifacts.
        shrink: minimize failures with delta debugging.
        shrink_budget: simulation-run cap per minimization.
        obs: optional trace bus for ``check.*`` events.
        registry: optional metrics registry for exploration counters.
    """

    def __init__(
        self,
        base_seed: int = 0,
        config: GeneratorConfig | None = None,
        out_dir: str | None = None,
        shrink: bool = True,
        shrink_budget: int = 200,
        obs: TraceBus | None = None,
        registry=None,
    ):
        self.generator = ScenarioGenerator(base_seed, config)
        self.out_dir = out_dir
        self.shrink = shrink
        self.shrink_budget = shrink_budget
        self.obs = obs
        self.registry = registry

    # -- single scenario -------------------------------------------------------

    def run_index(self, index: int) -> ScenarioOutcome:
        """Generate, run, and (on failure) shrink scenario ``index``."""
        scenario = self.generator.generate(index)
        result = run_scenario(scenario)
        outcome = ScenarioOutcome(index=index, scenario=scenario, result=result)
        self._observe_run(index, scenario, result)
        if result.failure_kinds:
            self._handle_failure(outcome)
        return outcome

    def _handle_failure(self, outcome: ScenarioOutcome) -> None:
        """Shrink a failing scenario and write its artifacts."""
        scenario, result = outcome.scenario, outcome.result
        minimal = scenario
        if self.shrink:
            original_kinds = set(result.failure_kinds)

            def reproduces(candidate: RunResult) -> bool:
                return bool(original_kinds & set(candidate.failure_kinds))

            shrunk = shrink_scenario(scenario, reproduces, budget=self.shrink_budget)
            # Dropping unused trailing clients changes kernel event order,
            # so the stripped form is only kept if it still reproduces.
            stripped = strip_unused(shrunk.scenario)
            if stripped != shrunk.scenario and reproduces(run_scenario(stripped)):
                shrunk = ShrinkResult(
                    scenario=stripped,
                    result=run_scenario(stripped),
                    runs=shrunk.runs + 2,
                    original_events=shrunk.original_events,
                )
            outcome.shrunk = shrunk
            minimal = shrunk.scenario
            if self.obs is not None and self.obs.active:
                self.obs.emit(
                    CHECK_SHRINK, float(outcome.index), None,
                    scenario=scenario.name,
                    before=shrunk.original_events,
                    after=shrunk.events,
                )
            if self.registry is not None:
                self.registry.inc("check.shrink_runs", shrunk.runs)
        if self.out_dir is not None:
            os.makedirs(self.out_dir, exist_ok=True)
            repro_path = os.path.join(self.out_dir, f"{scenario.name}.json")
            minimal.save(repro_path)
            outcome.repro_path = repro_path
            outcome.trace_path = self._capture_trace(minimal, scenario.name)

    def _capture_trace(self, scenario: Scenario, name: str) -> str:
        """Re-run a failing scenario with full tracing; export the stream."""
        bus = TraceBus(capacity=None)
        run_scenario(scenario, obs=bus)
        trace_path = os.path.join(self.out_dir, f"{name}.trace.jsonl")
        bus.export_jsonl(trace_path)
        return trace_path

    def _observe_run(self, index: int, scenario: Scenario, result: RunResult) -> None:
        """Emit the per-scenario event and bump the counters."""
        if self.obs is not None and self.obs.active:
            self.obs.emit(
                CHECK_RUN, float(index), None,
                scenario=scenario.name, seed=scenario.seed, verdict=result.verdict,
            )
        if self.registry is not None:
            counter = {
                "pass": "check.passed",
                "violation": "check.violations",
                "fail": "check.failed",
            }[result.verdict]
            self.registry.inc("check.scenarios")
            self.registry.inc(counter)

    # -- sweep -----------------------------------------------------------------

    def explore(self, n: int, progress=None) -> ExplorationReport:
        """Run scenarios ``0 .. n-1``; returns the aggregate report.

        Args:
            n: number of scenarios to explore.
            progress: optional callback invoked with each
                :class:`ScenarioOutcome` as it completes (the CLI's
                per-seed line printer).
        """
        report = ExplorationReport(base_seed=self.generator.base_seed)
        for index in range(n):
            outcome = self.run_index(index)
            report.scenarios += 1
            verdict = outcome.result.verdict
            report.verdicts.append(verdict)
            if verdict == "pass":
                report.passed += 1
            elif verdict == "violation":
                report.violations += 1
            else:
                report.failed += 1
                report.failures.append(outcome)
            if progress is not None:
                progress(outcome)
        return report
