"""Budgeted scenario exploration with automatic failure minimization.

The :class:`Explorer` is the harness's driver loop: generate scenario
``i``, run it, classify the verdict, and — on an invariant failure —
shrink it to a minimal reproduction, write the repro scenario file, and
capture a full observability trace of the failing run.  Exploration is
deterministic in ``(base_seed, n)``: the same sweep always produces the
same verdicts, which is what lets CI treat "0 failures out of N" as a
regression gate rather than a coin flip.

Observability: when given a trace bus the explorer emits one
``check.run`` event per scenario and a ``check.shrink`` event per
minimization; when given a metrics registry it maintains
``check.scenarios`` / ``check.passed`` / ``check.violations`` /
``check.failed`` / ``check.shrink_runs`` counters.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field
from typing import Iterator

from repro.check.generator import GeneratorConfig, ScenarioGenerator, effective_config
from repro.check.runner import RunResult, run_scenario
from repro.check.scenario import Scenario
from repro.check.shrink import ShrinkResult, shrink_scenario, strip_unused
from repro.obs.bus import TraceBus
from repro.obs.events import CHECK_RUN, CHECK_SHRINK
from repro.parallel import SweepPool, resolve_workers


@dataclass
class ScenarioOutcome:
    """Everything the explorer learned about one scenario.

    Attributes:
        index: the scenario's index in the sweep.
        scenario: the generated scenario.
        result: the run result (verdict, evidence).
        shrunk: the minimization outcome, when the run failed and
            shrinking was enabled.
        repro_path: where the minimal scenario file was written.
        trace_path: where the failing run's obs trace was written.
    """

    index: int
    scenario: Scenario
    result: RunResult
    shrunk: ShrinkResult | None = None
    repro_path: str | None = None
    trace_path: str | None = None


@dataclass
class ExplorationReport:
    """Aggregate verdict of one exploration sweep.

    Attributes:
        base_seed: the sweep's seed namespace.
        scenarios: scenarios executed.
        passed: runs with no violations and no invariant failures.
        violations: runs whose only finding was an expected-class clock
            violation (scenario tagged ``may_violate``).
        failed: runs that failed an invariant — these are protocol or
            harness bugs and fail CI.
        failures: the failing outcomes, with shrink artifacts.
        verdicts: per-scenario verdict strings, in index order.
        config: the effective generator configuration of the sweep
            (:func:`~repro.check.generator.effective_config`) — shards,
            batching, eviction, cache capacity, workload — so a report
            artifact records exactly what was swept.
    """

    base_seed: int
    scenarios: int = 0
    passed: int = 0
    violations: int = 0
    failed: int = 0
    failures: list[ScenarioOutcome] = field(default_factory=list)
    verdicts: list[str] = field(default_factory=list)
    config: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no scenario failed an invariant."""
        return self.failed == 0

    def to_json(self) -> dict:
        """Plain-data summary (for the CLI's ``--json`` report)."""
        return {
            "base_seed": self.base_seed,
            "config": dict(self.config),
            "scenarios": self.scenarios,
            "passed": self.passed,
            "violations": self.violations,
            "failed": self.failed,
            "verdicts": list(self.verdicts),
            "failures": [
                {
                    "index": o.index,
                    "name": o.scenario.name,
                    "failure_kinds": list(o.result.failure_kinds),
                    "events_before": o.scenario.event_count,
                    "events_after": o.shrunk.events if o.shrunk else None,
                    "repro": o.repro_path,
                    "trace": o.trace_path,
                }
                for o in self.failures
            ],
        }


def _compute_outcome(
    generator: ScenarioGenerator,
    index: int,
    shrink: bool,
    shrink_budget: int,
    capture: bool,
) -> tuple[ScenarioOutcome, str | None]:
    """The pure per-scenario work: generate, run, shrink, render trace.

    This is the unit both execution paths share — the serial loop calls
    it inline, the parallel path ships it to worker processes — which is
    what makes ``workers=N`` output byte-identical to ``workers=1`` by
    construction.  No filesystem writes and no observability emissions
    happen here; the explorer finalizes outcomes in index order.

    Returns:
        ``(outcome, trace_text)`` where ``trace_text`` is the failing
        run's full JSONL trace (None for healthy runs or when artifact
        capture is off).
    """
    scenario = generator.generate(index)
    result = run_scenario(scenario)
    outcome = ScenarioOutcome(index=index, scenario=scenario, result=result)
    trace_text = None
    if result.failure_kinds:
        minimal = scenario
        if shrink:
            original_kinds = set(result.failure_kinds)

            def reproduces(candidate: RunResult) -> bool:
                return bool(original_kinds & set(candidate.failure_kinds))

            shrunk = shrink_scenario(scenario, reproduces, budget=shrink_budget)
            # Dropping unused trailing clients changes kernel event order,
            # so the stripped form is only kept if it still reproduces.
            stripped = strip_unused(shrunk.scenario)
            if stripped != shrunk.scenario and reproduces(run_scenario(stripped)):
                shrunk = ShrinkResult(
                    scenario=stripped,
                    result=run_scenario(stripped),
                    runs=shrunk.runs + 2,
                    original_events=shrunk.original_events,
                )
            outcome.shrunk = shrunk
            minimal = shrunk.scenario
        if capture:
            bus = TraceBus(capacity=None)
            run_scenario(minimal, obs=bus)
            trace_text = bus.to_jsonl()
    return outcome, trace_text


@dataclass(frozen=True)
class _SweepSpec:
    """Everything a worker process needs to recompute scenario ``i``.

    Picklable by construction: the generator is carried as *class +
    constructor arguments* and rebuilt inside the worker, because
    generation is a pure function of ``(base_seed, config, index)``.
    """

    generator_cls: type
    base_seed: int
    config: GeneratorConfig | None
    shrink: bool
    shrink_budget: int
    capture: bool


def _sweep_job(spec: _SweepSpec, index: int) -> tuple[ScenarioOutcome, str | None]:
    """Worker-side job: rebuild the generator, compute one outcome."""
    generator = spec.generator_cls(spec.base_seed, spec.config)
    return _compute_outcome(
        generator, index, spec.shrink, spec.shrink_budget, spec.capture
    )


class Explorer:
    """Runs N generated scenarios and minimizes whatever fails.

    Args:
        base_seed: seed namespace handed to the generator.
        config: grammar preset (default: smoke without clock faults, so
            every violation is a true failure).
        out_dir: directory for repro files and traces of failures;
            created on first failure.  None disables artifacts.
        shrink: minimize failures with delta debugging.
        shrink_budget: simulation-run cap per minimization.
        obs: optional trace bus for ``check.*`` events.
        registry: optional metrics registry for exploration counters.
        generator_cls: the :class:`ScenarioGenerator` (sub)class to
            instantiate — parallel sweeps rebuild it inside each worker
            from ``(generator_cls, base_seed, config)``, so ad-hoc
            instance patches on :attr:`generator` are only honored by
            serial runs.
    """

    def __init__(
        self,
        base_seed: int = 0,
        config: GeneratorConfig | None = None,
        out_dir: str | None = None,
        shrink: bool = True,
        shrink_budget: int = 200,
        obs: TraceBus | None = None,
        registry=None,
        generator_cls: type[ScenarioGenerator] = ScenarioGenerator,
    ):
        self.generator = generator_cls(base_seed, config)
        self.out_dir = out_dir
        self.shrink = shrink
        self.shrink_budget = shrink_budget
        self.obs = obs
        self.registry = registry

    # -- single scenario -------------------------------------------------------

    def run_index(self, index: int) -> ScenarioOutcome:
        """Generate, run, and (on failure) shrink scenario ``index``."""
        outcome, trace_text = _compute_outcome(
            self.generator, index, self.shrink, self.shrink_budget,
            capture=self.out_dir is not None,
        )
        self._finalize(outcome, trace_text)
        return outcome

    def _finalize(self, outcome: ScenarioOutcome, trace_text: str | None) -> None:
        """Index-order side effects: obs events, counters, artifacts.

        Runs only in the driving process and strictly in scenario-index
        order — in parallel sweeps the pool's deterministic merge feeds
        outcomes here one by one, so emitted events, counter totals and
        artifact bytes match a serial run exactly.
        """
        scenario, result = outcome.scenario, outcome.result
        self._observe_run(outcome.index, scenario, result)
        if not result.failure_kinds:
            return
        if outcome.shrunk is not None:
            shrunk = outcome.shrunk
            if self.obs is not None and self.obs.active:
                self.obs.emit(
                    CHECK_SHRINK, float(outcome.index), None,
                    scenario=scenario.name,
                    before=shrunk.original_events,
                    after=shrunk.events,
                )
            if self.registry is not None:
                self.registry.inc("check.shrink_runs", shrunk.runs)
        if self.out_dir is not None:
            minimal = outcome.shrunk.scenario if outcome.shrunk else scenario
            os.makedirs(self.out_dir, exist_ok=True)
            repro_path = os.path.join(self.out_dir, f"{scenario.name}.json")
            minimal.save(repro_path)
            outcome.repro_path = repro_path
            trace_path = os.path.join(self.out_dir, f"{scenario.name}.trace.jsonl")
            with open(trace_path, "w", encoding="utf-8") as fh:
                fh.write(trace_text or "")
            outcome.trace_path = trace_path

    def _observe_run(self, index: int, scenario: Scenario, result: RunResult) -> None:
        """Emit the per-scenario event and bump the counters."""
        if self.obs is not None and self.obs.active:
            self.obs.emit(
                CHECK_RUN, float(index), None,
                scenario=scenario.name, seed=scenario.seed, verdict=result.verdict,
            )
        if self.registry is not None:
            counter = {
                "pass": "check.passed",
                "violation": "check.violations",
                "fail": "check.failed",
            }[result.verdict]
            self.registry.inc("check.scenarios")
            self.registry.inc(counter)

    # -- sweep -----------------------------------------------------------------

    def _outcomes(
        self, n: int, workers: int
    ) -> Iterator[tuple[ScenarioOutcome, str | None]]:
        """Yield ``(outcome, trace_text)`` for scenarios 0..n-1 in order.

        ``workers <= 1`` computes inline (honoring any instance patches
        on :attr:`generator`); otherwise a :class:`SweepPool` fans the
        computation across processes, each rebuilding the generator from
        ``(type(generator), base_seed, config)``, and streams results
        back in index order.
        """
        capture = self.out_dir is not None
        if workers <= 1 or n <= 1:
            for index in range(n):
                yield _compute_outcome(
                    self.generator, index, self.shrink, self.shrink_budget, capture
                )
            return
        spec = _SweepSpec(
            generator_cls=type(self.generator),
            base_seed=self.generator.base_seed,
            config=self.generator.config,
            shrink=self.shrink,
            shrink_budget=self.shrink_budget,
            capture=capture,
        )
        job = functools.partial(_sweep_job, spec)
        with SweepPool(job, workers=workers, obs=self.obs) as pool:
            yield from pool.imap(range(n))

    def explore(
        self, n: int, progress=None, workers: int | str | None = 1
    ) -> ExplorationReport:
        """Run scenarios ``0 .. n-1``; returns the aggregate report.

        The report — and any failure artifacts — are byte-identical for
        every ``workers`` value: parallel results are merged in index
        order before any side effect happens.

        Args:
            n: number of scenarios to explore.
            progress: optional callback invoked with each
                :class:`ScenarioOutcome` as it completes (the CLI's
                per-seed line printer).
            workers: worker processes (``"auto"``/``None`` = one per
                CPU; ``1`` = serial in-process).
        """
        workers = resolve_workers(workers)
        report = ExplorationReport(
            base_seed=self.generator.base_seed,
            config=effective_config(self.generator.config),
        )
        for outcome, trace_text in self._outcomes(n, workers):
            self._finalize(outcome, trace_text)
            report.scenarios += 1
            verdict = outcome.result.verdict
            report.verdicts.append(verdict)
            if verdict == "pass":
                report.passed += 1
            elif verdict == "violation":
                report.violations += 1
            else:
                report.failed += 1
                report.failures.append(outcome)
            if progress is not None:
                progress(outcome)
        return report
