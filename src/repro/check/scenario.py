"""Declarative, replayable test scenarios.

A :class:`Scenario` captures everything a run needs — cluster shape,
protocol knobs, the operation stream and the fault schedule — as plain
data.  Serializing it to JSON and loading it back reproduces the *exact*
simulation (the kernel is seeded from the scenario), which is what makes
failures found by exploration shareable: a minimal repro is one small
file, and ``python -m repro.check --replay file.json`` re-runs it.

Events come in two flavours: :class:`Op` (a client-submitted read or
write) and :class:`Fault` (crash window, partition window, loss window,
or a §5 clock fault).  Both are intentionally flat so the delta-debugging
shrinker can treat a scenario as a removable event list.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import IO, Iterable

from repro.cache.eviction import EVICTION_KINDS
from repro.errors import ScenarioError
from repro.shard.router import is_replica_host, is_server_host, replica_hosts, shard_hosts
from repro.workload.models import WorkloadSpec

#: Serialization format version, embedded in every scenario file.
FORMAT_VERSION = 1

#: Operation kinds a client can submit.
OP_KINDS = ("read", "write")

#: Fault kinds the injector understands.
FAULT_KINDS = ("crash", "partition", "loss", "clock_step", "clock_drift")


@dataclass(frozen=True)
class Op:
    """One client-submitted operation.

    Attributes:
        at: virtual submission time in seconds.
        client: client index (host ``c<client>``).
        kind: ``"read"`` or ``"write"``.
        file: index into the scenario's numbered files.
    """

    at: float
    client: int
    kind: str
    file: int = 0

    def to_json(self) -> dict:
        """Plain-data form for the scenario file."""
        return {"at": self.at, "client": self.client, "kind": self.kind, "file": self.file}

    @classmethod
    def from_json(cls, data: dict) -> "Op":
        """Rebuild from :meth:`to_json` output."""
        return cls(
            at=float(data["at"]),
            client=int(data["client"]),
            kind=str(data["kind"]),
            file=int(data.get("file", 0)),
        )


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    The meaning of the optional fields depends on ``kind``:

    * ``crash`` — ``host`` goes down at ``at`` and restarts ``duration``
      later (volatile state lost);
    * ``partition`` — ``hosts`` are cut off from every other host over
      ``[at, at + duration)``;
    * ``loss`` — the network-wide loss probability becomes ``rate`` over
      ``[at, at + duration)``;
    * ``clock_step`` — ``host``'s clock jumps by ``delta`` seconds at
      ``at`` (a negative client step / positive server step is a §5
      dangerous direction);
    * ``clock_drift`` — ``host``'s clock rate error becomes ``drift`` at
      ``at``, reading kept continuous (negative on a client / positive on
      the server is dangerous).
    """

    kind: str
    at: float
    host: str = ""
    duration: float = 0.0
    hosts: tuple[str, ...] = ()
    delta: float = 0.0
    drift: float = 0.0
    rate: float = 0.0

    @property
    def dangerous(self) -> bool:
        """True for the §5 clock-fault directions that can break consistency.

        A client clock that advances too slowly (negative step or drift)
        or a server clock that advances too quickly (positive step or
        drift) can let a write commit while a holder still trusts its
        copy; the opposite directions only cost extra traffic.
        """
        if self.kind == "clock_step":
            value = self.delta
        elif self.kind == "clock_drift":
            value = self.drift
        else:
            return False
        if is_replica_host(self.host):
            # A replica is dual-role: as (potential) master it grants file
            # leases (fast clock dangerous) and it *holds* the PaxosLease
            # master lease (slow clock dangerous) — both directions count.
            return value != 0.0
        if is_server_host(self.host):
            return value > 0.0
        return value < 0.0

    def to_json(self) -> dict:
        """Plain-data form with default-valued fields pruned."""
        data: dict = {"kind": self.kind, "at": self.at}
        if self.host:
            data["host"] = self.host
        if self.duration:
            data["duration"] = self.duration
        if self.hosts:
            data["hosts"] = list(self.hosts)
        if self.delta:
            data["delta"] = self.delta
        if self.drift:
            data["drift"] = self.drift
        if self.rate:
            data["rate"] = self.rate
        return data

    @classmethod
    def from_json(cls, data: dict) -> "Fault":
        """Rebuild from :meth:`to_json` output."""
        return cls(
            kind=str(data["kind"]),
            at=float(data["at"]),
            host=str(data.get("host", "")),
            duration=float(data.get("duration", 0.0)),
            hosts=tuple(data.get("hosts", ())),
            delta=float(data.get("delta", 0.0)),
            drift=float(data.get("drift", 0.0)),
            rate=float(data.get("rate", 0.0)),
        )


@dataclass(frozen=True)
class Scenario:
    """A complete, self-contained description of one simulated run.

    Attributes:
        name: human-readable label (carried into reports and repro files).
        seed: kernel RNG seed — fixes message-loss coin flips etc.
        n_clients: number of client hosts ``c0 .. c{n-1}``.
        n_files: number of shared files ``/file0 .. /file{n-1}``.
        duration: length of the scheduled workload, virtual seconds.
        drain: extra virtual seconds after ``duration`` for the system to
            quiesce before invariants are evaluated.
        term: fixed lease term granted by the server.
        loss_rate: baseline network loss probability per delivery leg.
        duplicate_rate: baseline duplicate probability per delivery leg.
        rpc_timeout: client retransmission timeout for reads/extensions.
        write_timeout: client retransmission timeout for writes.
        max_retries: client retransmissions before an operation fails.
        batching: run the clients with the request pipeline on, so ops
            submitted at the same instant ship as BatchRequest frames.
            Serialized only when True, so legacy scenario digests (and the
            pinned benchmark mix hashes built from them) are unchanged.
        cache_capacity: client datum-cache capacity.  The default (4096)
            is effectively unbounded for scenario-sized runs; stampede
            scenarios shrink it below the working set.  Pruned at the
            default for digest stability.
        eviction: client cache eviction policy, one of
            :data:`~repro.cache.eviction.EVICTION_KINDS`.  Pruned at
            ``"lru"`` (the seed behaviour).
        shards: number of lease-server shards.  1 (the default, pruned
            from serialization so legacy digests are unchanged) runs the
            classic single-server cluster on host ``"server"``; ``N > 1``
            consistent-hashes the file namespace across server hosts
            ``s0 .. s{N-1}`` (see :mod:`repro.shard`).
        replicas: lease-authority replication factor.  1 (the default,
            pruned like ``shards`` so legacy digests are unchanged) keeps
            the unreplicated authority; ``N > 1`` runs each authority as a
            PaxosLease replica group — hosts ``r0 .. r{N-1}``, or
            ``s{k}r{j}`` per shard when combined with ``shards``
            (see :mod:`repro.replica`).
        workload: the :class:`~repro.workload.models.WorkloadSpec` that
            *generated* ``ops``, carried for provenance and reporting.
            The ops stream stays materialized — replay and shrinking never
            need the model.  Pruned when None.
        may_violate: True when the schedule contains a dangerous §5 clock
            fault, so oracle violations are *possible* (expected-class)
            rather than harness failures.
        ops: the operation stream, in scheduling order.
        faults: the fault schedule, in scheduling order.
    """

    name: str = "scenario"
    seed: int = 0
    n_clients: int = 2
    n_files: int = 2
    duration: float = 30.0
    drain: float = 60.0
    term: float = 5.0
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    rpc_timeout: float = 0.5
    write_timeout: float = 2.0
    max_retries: int = 40
    batching: bool = False
    cache_capacity: int = 4096
    eviction: str = "lru"
    shards: int = 1
    replicas: int = 1
    workload: WorkloadSpec | None = None
    may_violate: bool = False
    ops: tuple[Op, ...] = ()
    faults: tuple[Fault, ...] = ()

    # -- derived views ---------------------------------------------------------

    @property
    def hosts(self) -> tuple[str, ...]:
        """Every host name in the cluster (servers first)."""
        if self.replicas > 1:
            if self.shards > 1:
                servers: tuple[str, ...] = ()
                for k in range(self.shards):
                    servers += replica_hosts(self.replicas, shard=k)
            else:
                servers = replica_hosts(self.replicas)
        elif self.shards > 1:
            servers = shard_hosts(self.shards)
        else:
            servers = ("server",)
        return servers + tuple(f"c{i}" for i in range(self.n_clients))

    @property
    def event_count(self) -> int:
        """Total removable events (operations plus faults)."""
        return len(self.ops) + len(self.faults)

    @property
    def has_dangerous_clock_fault(self) -> bool:
        """True when any scheduled clock fault is in a dangerous direction."""
        return any(f.dangerous for f in self.faults)

    def content_for(self, op: Op) -> bytes:
        """The deterministic payload a write operation stores."""
        return f"c{op.client}@{op.at:.3f}".encode()

    def with_events(
        self, ops: Iterable[Op], faults: Iterable[Fault]
    ) -> "Scenario":
        """A copy of this scenario with a different event schedule."""
        return dataclasses.replace(self, ops=tuple(ops), faults=tuple(faults))

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        """Check structural well-formedness.

        Raises:
            ValueError: an op or fault references an unknown client, file
                or host, or uses an unknown kind.
        """
        if self.n_clients < 1:
            raise ValueError(f"need at least one client, got {self.n_clients}")
        if self.n_files < 1:
            raise ValueError(f"need at least one file, got {self.n_files}")
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        if self.replicas < 1:
            raise ValueError(f"need at least one replica, got {self.replicas}")
        hosts = set(self.hosts)
        for op in self.ops:
            if op.kind not in OP_KINDS:
                raise ValueError(f"unknown op kind {op.kind!r}")
            if not 0 <= op.client < self.n_clients:
                raise ValueError(f"op references unknown client {op.client}")
            if not 0 <= op.file < self.n_files:
                raise ValueError(f"op references unknown file {op.file}")
        for fault in self.faults:
            if fault.kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {fault.kind!r}")
            if fault.host and fault.host not in hosts:
                raise ValueError(f"fault references unknown host {fault.host!r}")
            if fault.kind == "partition":
                unknown = set(fault.hosts) - hosts
                if unknown:
                    raise ValueError(f"partition references unknown hosts {sorted(unknown)}")
                if not fault.hosts:
                    raise ValueError("partition fault needs a non-empty host side")
            if fault.kind == "crash" and not fault.host:
                raise ValueError("crash fault needs a host")
            if fault.kind in ("clock_step", "clock_drift") and not fault.host:
                raise ValueError(f"{fault.kind} fault needs a host")
            if fault.kind == "loss" and not 0.0 <= fault.rate <= 1.0:
                raise ValueError(f"loss rate out of range: {fault.rate}")
        if self.cache_capacity < 1:
            raise ValueError(f"cache_capacity must be >= 1: {self.cache_capacity}")
        if self.eviction not in EVICTION_KINDS:
            raise ValueError(
                f"unknown eviction policy {self.eviction!r} "
                f"(have: {', '.join(EVICTION_KINDS)})"
            )
        if self.workload is not None:
            self.workload.validate()

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> dict:
        """Plain-data form of the whole scenario.

        ``batching``, ``cache_capacity``, ``eviction``, ``shards`` and
        ``workload`` are pruned at their defaults (like Fault's optional
        fields) so pre-existing scenarios keep their digests.
        """
        data = {
            "format": FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "n_clients": self.n_clients,
            "n_files": self.n_files,
            "duration": self.duration,
            "drain": self.drain,
            "term": self.term,
            "loss_rate": self.loss_rate,
            "duplicate_rate": self.duplicate_rate,
            "rpc_timeout": self.rpc_timeout,
            "write_timeout": self.write_timeout,
            "max_retries": self.max_retries,
            "may_violate": self.may_violate,
            "ops": [op.to_json() for op in self.ops],
            "faults": [fault.to_json() for fault in self.faults],
        }
        if self.batching:
            data["batching"] = True
        if self.cache_capacity != 4096:
            data["cache_capacity"] = self.cache_capacity
        if self.eviction != "lru":
            data["eviction"] = self.eviction
        if self.shards != 1:
            data["shards"] = self.shards
        if self.replicas != 1:
            data["replicas"] = self.replicas
        if self.workload is not None:
            data["workload"] = self.workload.to_json()
        return data

    @classmethod
    def from_json(cls, data: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output.

        Raises:
            ValueError: the format version is newer than this code.
        """
        version = int(data.get("format", FORMAT_VERSION))
        if version > FORMAT_VERSION:
            raise ValueError(f"scenario format {version} is newer than supported {FORMAT_VERSION}")
        workload_data = data.get("workload")
        workload = None
        if workload_data is not None:
            if not isinstance(workload_data, dict):
                raise ScenarioError(
                    f"workload must be an object, got {type(workload_data).__name__}"
                )
            workload = WorkloadSpec.from_json(workload_data)
        scenario = cls(
            name=str(data.get("name", "scenario")),
            seed=int(data.get("seed", 0)),
            n_clients=int(data.get("n_clients", 2)),
            n_files=int(data.get("n_files", 2)),
            duration=float(data.get("duration", 30.0)),
            drain=float(data.get("drain", 60.0)),
            term=float(data.get("term", 5.0)),
            loss_rate=float(data.get("loss_rate", 0.0)),
            duplicate_rate=float(data.get("duplicate_rate", 0.0)),
            rpc_timeout=float(data.get("rpc_timeout", 0.5)),
            write_timeout=float(data.get("write_timeout", 2.0)),
            max_retries=int(data.get("max_retries", 40)),
            batching=bool(data.get("batching", False)),
            cache_capacity=int(data.get("cache_capacity", 4096)),
            eviction=str(data.get("eviction", "lru")),
            shards=int(data.get("shards", 1)),
            replicas=int(data.get("replicas", 1)),
            workload=workload,
            may_violate=bool(data.get("may_violate", False)),
            ops=tuple(Op.from_json(o) for o in data.get("ops", ())),
            faults=tuple(Fault.from_json(f) for f in data.get("faults", ())),
        )
        scenario.validate()
        return scenario

    def dumps(self, indent: int | None = None) -> str:
        """The scenario as a canonical JSON string (sorted keys)."""
        return json.dumps(self.to_json(), sort_keys=True, indent=indent)

    @classmethod
    def loads(cls, text: str) -> "Scenario":
        """Parse a scenario from a JSON string."""
        return cls.from_json(json.loads(text))

    def save(self, dest: str | IO[str]) -> None:
        """Write the scenario to a path or open text file."""
        if isinstance(dest, (str, bytes)):
            with open(dest, "w", encoding="utf-8") as fh:
                self.save(fh)
            return
        dest.write(self.dumps(indent=2) + "\n")

    @classmethod
    def load(cls, source: str | IO[str]) -> "Scenario":
        """Read a scenario from a path or open text file."""
        if isinstance(source, (str, bytes)):
            with open(source, "r", encoding="utf-8") as fh:
                return cls.load(fh)
        return cls.loads(source.read())

    def digest(self) -> str:
        """SHA-256 of the canonical JSON form — pins the exact schedule."""
        return hashlib.sha256(self.dumps().encode()).hexdigest()
