"""Scenario-exploration harness: generate, run, check, replay, shrink.

The paper's central claim (§5) is that leases preserve single-copy
consistency across *every* non-Byzantine failure interleaving.  This
package turns the simulator, fault injector and consistency oracle into a
correctness-tooling subsystem that actively searches for counterexamples:

* :mod:`repro.check.scenario` — a declarative, JSON-serializable
  :class:`~repro.check.scenario.Scenario` (workload + fault schedule), so
  any run is replayable from a file;
* :mod:`repro.check.generator` — a seeded
  :class:`~repro.check.generator.ScenarioGenerator` sampling scenarios
  from a weighted grammar over crashes, partitions, message loss and the
  §5 clock-fault directions;
* :mod:`repro.check.runner` — executes a scenario against
  :func:`~repro.sim.driver.build_cluster` and checks consistency,
  liveness and convergence invariants;
* :mod:`repro.check.shrink` — delta-debugging minimizer that removes
  events while a failure still reproduces;
* :mod:`repro.check.explorer` — drives N seeded scenarios, shrinks
  failures and emits minimal repro files plus obs traces;
* ``python -m repro.check`` — the command-line entry point.
"""

from repro.check.explorer import ExplorationReport, Explorer, ScenarioOutcome
from repro.check.generator import (
    GeneratorConfig,
    ScenarioGenerator,
    demo_clock_fault_scenario,
    stress_scenario,
)
from repro.check.runner import RunResult, build_scenario_cluster, run_scenario
from repro.check.scenario import Fault, Op, Scenario
from repro.check.shrink import ShrinkResult, ddmin, shrink_scenario

__all__ = [
    "ExplorationReport",
    "Explorer",
    "Fault",
    "GeneratorConfig",
    "Op",
    "RunResult",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioOutcome",
    "ShrinkResult",
    "build_scenario_cluster",
    "ddmin",
    "demo_clock_fault_scenario",
    "run_scenario",
    "shrink_scenario",
    "stress_scenario",
]
