"""Seeded scenario generation from a weighted fault/workload grammar.

:class:`ScenarioGenerator` samples :class:`~repro.check.scenario.Scenario`
instances from a grammar covering everything §5 allows a non-Byzantine
system to do — crash/restart windows, two-sided partitions, message-loss
windows, duplicates — plus the paper's clock-fault taxonomy, split into
the directions that *must* stay safe (fast client, slow server) and the
directions *expected* to be able to violate consistency (slow client,
fast server).  Dangerous scenarios are tagged ``may_violate`` so the
explorer classifies their violations as expected-class findings.

Generation is pure: scenario ``i`` of base seed ``s`` is a deterministic
function of ``(s, i)``, independent of which other scenarios were
generated.  Replaying an exploration therefore never requires storing
more than ``(s, i)`` — though failures are also written out as full
scenario files.

:func:`stress_scenario` reproduces the *exact* schedule of the legacy
hand-rolled stress test (`tests/integration/test_random_stress.py`) for a
given seed, consuming the same RNG stream in the same order, so the old
and new paths are provably equivalent run-for-run.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.check.scenario import Fault, Op, Scenario
from repro.workload.models import WorkloadSpec, preset, scenario_ops, with_capacity_ratio

#: Adversarial scenario families (:func:`adversarial_config`): a flash
#: crowd onto one installed file (thundering-herd lease storm), a cache
#: stampede with the working set far larger than cache, and a flash crowd
#: timed to hit *during* a server crash/restart window.
ADVERSARIAL_KINDS = ("flash-crowd", "stampede", "herd")


@dataclass(frozen=True)
class GeneratorConfig:
    """Weights and ranges of the scenario grammar.

    The defaults are the *smoke* preset: short durations and small
    clusters so a 50-scenario sweep stays inside a CI budget.
    :meth:`long` widens everything for overnight exploration.
    """

    n_clients: tuple[int, int] = (2, 4)
    n_files: tuple[int, int] = (2, 4)
    duration: tuple[float, float] = (15.0, 35.0)
    drain: float = 60.0
    terms: tuple[float, ...] = (2.0, 5.0, 10.0)
    op_rate: tuple[float, float] = (0.5, 2.0)
    p_write: float = 0.25
    loss_rates: tuple[float, ...] = (0.0, 0.0, 0.0, 0.05, 0.15)
    duplicate_rates: tuple[float, ...] = (0.0, 0.0, 0.0, 0.02)
    max_client_crashes: int = 2
    max_partitions: int = 2
    p_server_crash: float = 0.3
    p_loss_window: float = 0.25
    p_clock_fault: float = 0.0
    p_dangerous: float = 0.5
    #: Generate scenarios with the client request pipeline on.  Kept out
    #: of the random grammar so the same (base_seed, index) explores the
    #: identical schedule with batching on or off.
    batching: bool = False
    #: Draw the op stream from this traffic model instead of the legacy
    #: uniform Poisson grammar (``n_files`` and ``op_rate`` above are then
    #: ignored — the model owns key popularity and arrival rate).  None
    #: keeps the legacy grammar byte-for-byte.
    workload: WorkloadSpec | None = None
    #: Client cache eviction policy for generated scenarios.
    eviction: str = "lru"
    #: Client cache capacity; shrink below the workload's ``n_files`` to
    #: put the cache under stampede-grade capacity pressure.
    cache_capacity: int = 4096
    #: Time the server crash window to start *inside* the workload's
    #: flash-crowd window (requires a flash workload and a server crash
    #: being rolled) — the herd-during-restart family.
    crash_in_flash: bool = False
    #: Number of lease-server shards in generated scenarios.  1 keeps the
    #: classic single-server cluster *and* the legacy RNG draw order, so
    #: existing (base_seed, index) pairs keep their exact schedules; above
    #: 1, server-targeting faults additionally draw a victim shard.
    shards: int = 1
    #: Lease-authority replication factor.  1 keeps the unreplicated
    #: authority and the legacy RNG draw order; above 1, each authority
    #: is a PaxosLease replica group (hosts ``r{j}`` / ``s{k}r{j}``) and
    #: server-targeting faults additionally draw a victim replica.
    replicas: int = 1

    @classmethod
    def smoke(
        cls, clock_faults: bool = False, batching: bool = False
    ) -> "GeneratorConfig":
        """The CI-budget preset (optionally including clock faults)."""
        return cls(
            p_clock_fault=0.35 if clock_faults else 0.0, batching=batching
        )

    @classmethod
    def long(
        cls, clock_faults: bool = True, batching: bool = False
    ) -> "GeneratorConfig":
        """The overnight preset: bigger clusters, longer runs, more faults."""
        return cls(
            n_clients=(2, 6),
            n_files=(2, 6),
            duration=(30.0, 90.0),
            op_rate=(1.0, 3.0),
            max_client_crashes=4,
            max_partitions=3,
            p_server_crash=0.5,
            p_loss_window=0.4,
            p_clock_fault=0.5 if clock_faults else 0.0,
            batching=batching,
        )


class ScenarioGenerator:
    """Deterministically samples scenarios from the grammar.

    Attributes:
        base_seed: namespace for the whole exploration; scenario ``i`` is
            a pure function of ``(base_seed, i)``.
        config: grammar weights and ranges.
    """

    def __init__(self, base_seed: int = 0, config: GeneratorConfig | None = None):
        self.base_seed = base_seed
        self.config = config or GeneratorConfig()

    def generate(self, index: int) -> Scenario:
        """Sample scenario ``index`` of this generator's seed space."""
        cfg = self.config
        rng = random.Random(f"repro.check/{self.base_seed}/{index}")
        n_clients = rng.randint(*cfg.n_clients)
        if cfg.workload is None:
            # The legacy grammar — RNG draw order is frozen so existing
            # (base_seed, index) pairs keep their exact schedules.
            n_files = rng.randint(*cfg.n_files)
            duration = rng.uniform(*cfg.duration)
            term = rng.choice(cfg.terms)
            op_rate = rng.uniform(*cfg.op_rate)
            ops = self._sample_ops(
                rng, n_clients, n_files, duration, op_rate, cfg.p_write
            )
        else:
            n_files = cfg.workload.n_files
            duration = rng.uniform(*cfg.duration)
            term = rng.choice(cfg.terms)
            ops = [
                Op(at=at, client=client, kind=kind, file=file)
                for at, client, kind, file in scenario_ops(
                    cfg.workload, n_clients, duration, rng.getrandbits(32)
                )
            ]
        faults = self._sample_faults(rng, n_clients, duration)

        scenario = Scenario(
            name=f"gen-{self.base_seed}-{index}",
            seed=rng.getrandbits(32),
            n_clients=n_clients,
            n_files=n_files,
            duration=duration,
            drain=cfg.drain,
            term=term,
            loss_rate=rng.choice(cfg.loss_rates),
            duplicate_rate=rng.choice(cfg.duplicate_rates),
            batching=cfg.batching,
            cache_capacity=cfg.cache_capacity,
            eviction=cfg.eviction,
            shards=cfg.shards,
            replicas=cfg.replicas,
            workload=cfg.workload,
            ops=tuple(ops),
            faults=tuple(faults),
        )
        if scenario.has_dangerous_clock_fault:
            scenario = dataclasses.replace(scenario, may_violate=True)
        scenario.validate()
        return scenario

    # -- grammar productions ---------------------------------------------------

    def _sample_ops(self, rng, n_clients, n_files, duration, op_rate, p_write):
        """A Poisson-ish per-client stream of reads and writes."""
        ops = []
        for client in range(n_clients):
            t = 0.0
            while t < duration:
                t += rng.expovariate(op_rate)
                kind = "write" if rng.random() < p_write else "read"
                ops.append(Op(at=t, client=client, kind=kind, file=rng.randrange(n_files)))
        return ops

    def _sample_faults(self, rng, n_clients, duration):
        """Crash windows, partitions, loss windows and §5 clock faults.

        Every *window* fault heals strictly before ``duration`` so the
        drain period starts with a whole network — the precondition of the
        liveness and convergence invariants.  Clock faults persist (a bad
        crystal stays bad), but their magnitudes are bounded so retries
        and the drain still cover them.
        """
        cfg = self.config
        faults = []
        for _ in range(rng.randint(0, cfg.max_client_crashes)):
            victim = rng.randrange(n_clients)
            window = rng.uniform(1.0, 6.0)
            start = rng.uniform(1.0, max(1.5, duration - window - 1.0))
            faults.append(
                Fault("crash", at=start, host=f"c{victim}", duration=window)
            )
        for _ in range(rng.randint(0, cfg.max_partitions)):
            victim = rng.randrange(n_clients)
            window = rng.uniform(1.0, 6.0)
            start = rng.uniform(1.0, max(1.5, duration - window - 1.0))
            faults.append(
                Fault("partition", at=start, hosts=(f"c{victim}",), duration=window)
            )
        if rng.random() < cfg.p_server_crash:
            window = rng.uniform(1.0, 3.0)
            workload = cfg.workload
            if cfg.crash_in_flash and workload is not None and workload.has_flash:
                # Herd-during-restart: the crash opens inside the flash
                # window, so the whole crowd's lease storm lands on a dead
                # (then freshly restarted, lease-table-empty) server.
                flash_start = workload.flash_at * duration
                flash_end = min(duration, flash_start + workload.flash_width * duration)
                hi = max(flash_start + 0.1, min(flash_end, duration - window - 1.0))
                start = rng.uniform(flash_start, hi)
            else:
                start = rng.uniform(5.0, max(5.5, duration - window - 1.0))
            faults.append(
                Fault("crash", at=start, host=self._server_victim(rng), duration=window)
            )
        if rng.random() < cfg.p_loss_window:
            window = rng.uniform(2.0, 6.0)
            start = rng.uniform(1.0, max(1.5, duration - window - 1.0))
            faults.append(
                Fault("loss", at=start, rate=rng.uniform(0.3, 0.9), duration=window)
            )
        if rng.random() < cfg.p_clock_fault:
            faults.append(self._sample_clock_fault(rng, n_clients, duration))
        return faults

    def _server_victim(self, rng) -> str:
        """The host name a server-targeting fault hits.

        Single-server configs name it without consuming randomness (the
        frozen legacy draw order); sharded configs draw a victim shard,
        replicated ones additionally a victim replica.
        """
        shard = ""
        if self.config.shards > 1:
            shard = f"s{rng.randrange(self.config.shards)}"
        if self.config.replicas > 1:
            replica = f"r{rng.randrange(self.config.replicas)}"
            return shard + replica
        return shard or "server"

    def _sample_clock_fault(self, rng, n_clients, duration):
        """One clock fault, dangerous or safe per the configured weight.

        Dangerous directions (paper §5): a client clock that advances too
        slowly (negative step or drift) or a server clock that advances
        too quickly (positive step or drift).  Safe directions are the
        mirror images — they must only cost traffic, never consistency.
        """
        dangerous = rng.random() < self.config.p_dangerous
        on_server = rng.random() < 0.4
        host = self._server_victim(rng) if on_server else f"c{rng.randrange(n_clients)}"
        at = rng.uniform(1.0, duration * 0.6)
        if rng.random() < 0.5:  # step fault
            magnitude = rng.uniform(2.0, 8.0) if not on_server else rng.uniform(2.0, 5.0)
            sign = 1.0 if (dangerous == on_server) else -1.0
            return Fault("clock_step", at=at, host=host, delta=sign * magnitude)
        magnitude = rng.uniform(0.2, 0.6)
        sign = 1.0 if (dangerous == on_server) else -1.0
        return Fault("clock_drift", at=at, host=host, drift=sign * magnitude)


def effective_config(config: GeneratorConfig) -> dict:
    """The full effective sweep configuration, for machine-readable reports.

    Everything that shapes generated scenarios beyond (base_seed, index):
    shard count, batching, eviction policy, cache capacity, the workload
    model (serialized) and the fault-grammar toggles.  Embedded in
    ``repro.check --json`` reports so a CI artifact records *what* was
    actually swept, not just how it went.
    """
    return {
        "shards": config.shards,
        "replicas": config.replicas,
        "batching": config.batching,
        "eviction": config.eviction,
        "cache_capacity": config.cache_capacity,
        "workload": config.workload.to_json() if config.workload is not None else None,
        "clock_faults": config.p_clock_fault > 0.0,
        "crash_in_flash": config.crash_in_flash,
    }


def adversarial_config(kind: str, eviction: str = "lru") -> GeneratorConfig:
    """The grammar config for one adversarial scenario family.

    All three families run with every oracle on; none of them carries a
    clock fault, so *any* violation is a real finding, never expected
    class.

    * ``flash-crowd`` — every client stampedes one installed file
      mid-run (the thundering-herd lease storm), with background Zipf
      traffic and the usual crash/partition/loss noise around it;
    * ``stampede`` — a Zipf working set six times the client cache, so
      every cold-key burst forces evictions while leases are in flight;
    * ``herd`` — the flash crowd again, but with a guaranteed server
      crash window opening *inside* the flash, so the whole herd's lease
      storm lands on a restarting, lease-table-empty server.

    Args:
        kind: one of :data:`ADVERSARIAL_KINDS`.
        eviction: cache policy for the generated scenarios (the sweep
            runs each family under both, ``lru`` and ``lru-lfu``).
    """
    if kind == "flash-crowd":
        return GeneratorConfig(
            n_clients=(3, 6),
            duration=(12.0, 20.0),
            max_client_crashes=1,
            max_partitions=1,
            p_server_crash=0.0,
            workload=preset("flash-crowd"),
            eviction=eviction,
        )
    if kind == "stampede":
        spec = preset("zipf")
        return GeneratorConfig(
            n_clients=(3, 6),
            duration=(15.0, 25.0),
            max_client_crashes=1,
            max_partitions=1,
            p_server_crash=0.2,
            workload=spec,
            eviction=eviction,
            cache_capacity=with_capacity_ratio(spec, 6.0),
        )
    if kind == "herd":
        return GeneratorConfig(
            n_clients=(3, 6),
            duration=(20.0, 30.0),
            max_client_crashes=0,
            max_partitions=0,
            p_server_crash=1.0,
            p_loss_window=0.0,
            workload=preset("flash-crowd"),
            eviction=eviction,
            crash_in_flash=True,
        )
    raise ValueError(
        f"unknown adversarial kind {kind!r} (have: {', '.join(ADVERSARIAL_KINDS)})"
    )


def stress_scenario(
    seed: int,
    n_clients: int = 4,
    n_files: int = 4,
    duration: float = 120.0,
    op_rate: float = 2.0,
    loss_rate: float = 0.0,
    faults: bool = False,
    term: float = 5.0,
) -> Scenario:
    """The legacy random-stress schedule for ``seed``, as a Scenario.

    Consumes ``random.Random(seed)`` in exactly the order the hand-rolled
    generator in ``tests/integration/test_random_stress.py`` did — per-
    client Poisson op streams first, then crash windows, partitions and
    the server crash — so driving the result through
    :func:`~repro.check.runner.run_scenario` replays the identical
    simulation (same kernel event order, same network statistics).
    """
    rng = random.Random(seed)
    ops = []
    for client in range(n_clients):
        t = 0.0
        while t < duration:
            t += rng.expovariate(op_rate)
            file_index = rng.choice(range(n_files))
            kind = "write" if rng.random() < 0.2 else "read"
            ops.append(Op(at=t, client=client, kind=kind, file=file_index))
    fault_events = []
    if faults:
        for _ in range(3):
            victim = rng.randrange(n_clients)
            start = rng.uniform(5.0, duration - 20.0)
            fault_events.append(
                Fault("crash", at=start, host=f"c{victim}", duration=rng.uniform(2.0, 10.0))
            )
        for _ in range(2):
            victim = rng.randrange(n_clients)
            start = rng.uniform(5.0, duration - 20.0)
            fault_events.append(
                Fault(
                    "partition",
                    at=start,
                    hosts=(f"c{victim}",),
                    duration=rng.uniform(2.0, 8.0),
                )
            )
        fault_events.append(
            Fault("crash", at=rng.uniform(20.0, 60.0), host="server", duration=2.0)
        )
    return Scenario(
        name=f"stress-{seed}",
        seed=seed,
        n_clients=n_clients,
        n_files=n_files,
        duration=duration,
        drain=60.0,
        term=term,
        loss_rate=loss_rate,
        ops=tuple(ops),
        faults=tuple(fault_events),
    )


def demo_clock_fault_scenario() -> Scenario:
    """The §5 textbook violation, as a five-event scenario.

    Client 0 caches ``/file0`` under a 5 s lease; its clock then steps
    6 s *backward* (the "advancing too slowly" direction), stretching its
    trust window past the server-side expiry; client 1 writes after the
    server has expired the lease (so no approval is requested); client
    0's next read is served stale from cache.  The shrinker acceptance
    test starts from a noisy superset of this scenario and must recover
    (a subset of) it.
    """
    return Scenario(
        name="demo-clock-step",
        seed=1,
        n_clients=2,
        n_files=1,
        duration=12.0,
        drain=20.0,
        term=5.0,
        may_violate=True,
        ops=(
            Op(at=0.5, client=0, kind="read", file=0),
            Op(at=7.0, client=1, kind="write", file=0),
            Op(at=9.0, client=0, kind="read", file=0),
        ),
        faults=(Fault("clock_step", at=2.0, host="c0", delta=-6.0),),
    )
