"""Executes a :class:`~repro.check.scenario.Scenario` and checks invariants.

One scenario run is fully deterministic: the cluster's kernel is seeded
from the scenario, ops are scheduled through
:meth:`~repro.sim.driver.Cluster.schedule_op` in list order, and faults
follow in list order, so the very same event interleaving replays from a
scenario file byte-for-byte (verified via the oracle's history
fingerprint).

Invariants checked after the run drains:

* **consistency** — the :class:`~repro.sim.oracle.ConsistencyOracle` must
  stay clean, unless the scenario carries a dangerous §5 clock fault
  (``may_violate``), in which case violations are recorded as expected-
  class findings rather than harness failures;
* **liveness** — every operation submitted on a host that never crashed
  afterwards must complete (ok or not) before the drain ends: no client
  may be permanently stuck behind a lease, partition or loss window once
  faults heal;
* **convergence** — after the drain, a probe read of every file from
  every client completes and (absent clock faults) returns the store's
  current version: writes eventually commit and caches converge.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.scenario import Fault, Scenario
from repro.lease.policy import FixedTermPolicy, TermPolicy
from repro.protocol.client import ClientConfig
from repro.replica.sim import build_replicated_cluster, build_sharded_replicated_cluster
from repro.shard.sim import build_sharded_cluster
from repro.sim.driver import Cluster, build_cluster
from repro.sim.network import NetworkParams
from repro.storage.store import FileStore

#: Virtual seconds a single probe read is allowed to take.
PROBE_LIMIT = 60.0


@dataclass
class RunResult:
    """The verdict and evidence from one scenario execution.

    Attributes:
        scenario: the scenario that ran.
        violations: stringified oracle violations, in observation order.
        liveness_failures: descriptions of ops that never completed.
        convergence_failures: descriptions of probes that timed out or
            returned a non-current version.
        reads_checked: linearizability checks performed (incl. probes).
        ops_submitted: ops actually submitted (host up at fire time).
        ops_completed: submitted ops that produced a result.
        fingerprint: the oracle's history fingerprint — replaying the
            same scenario must reproduce it exactly.
        stats: per-host network send/receive counters snapshotted after
            the drain but *before* convergence probes, so it is directly
            comparable with externally driven runs of the same schedule.
        events_executed: simulation-kernel events fired over the whole
            run *including* convergence probes — the work metric the
            sweep benchmark (``repro.parallel.baseline``) normalizes
            wall-clock time by.
    """

    scenario: Scenario
    violations: tuple[str, ...] = ()
    liveness_failures: tuple[str, ...] = ()
    convergence_failures: tuple[str, ...] = ()
    reads_checked: int = 0
    ops_submitted: int = 0
    ops_completed: int = 0
    fingerprint: str = ""
    stats: dict = field(default_factory=dict)
    events_executed: int = 0

    @property
    def violated(self) -> bool:
        """True when the oracle recorded at least one stale read."""
        return bool(self.violations)

    @property
    def failure_kinds(self) -> tuple[str, ...]:
        """The invariant classes this run failed (empty = healthy).

        ``consistency`` appears only when the scenario did *not* carry a
        dangerous clock fault — expected-direction violations are findings,
        not failures.
        """
        kinds = []
        if self.violations and not self.scenario.may_violate:
            kinds.append("consistency")
        if self.liveness_failures:
            kinds.append("liveness")
        if self.convergence_failures:
            kinds.append("convergence")
        return tuple(kinds)

    @property
    def verdict(self) -> str:
        """``"fail"``, ``"violation"`` (expected-class) or ``"pass"``."""
        if self.failure_kinds:
            return "fail"
        if self.violated:
            return "violation"
        return "pass"

    @property
    def ok(self) -> bool:
        """True when no invariant failed."""
        return not self.failure_kinds


def build_scenario_cluster(scenario: Scenario, obs=None, policy: TermPolicy | None = None) -> Cluster:
    """Assemble the cluster a scenario describes (no events scheduled yet).

    Args:
        scenario: cluster shape and protocol knobs to realize.
        obs: optional trace bus threaded through every layer.
        policy: term-policy override; defaults to the scenario's fixed term.
    """

    def setup_store(store: FileStore) -> None:
        for i in range(scenario.n_files):
            store.create_file(f"/file{i}", b"init")

    common = dict(
        n_clients=scenario.n_clients,
        policy=policy or FixedTermPolicy(scenario.term),
        setup_store=setup_store,
        network_params=NetworkParams(
            loss_rate=scenario.loss_rate, duplicate_rate=scenario.duplicate_rate
        ),
        client_config=ClientConfig(
            rpc_timeout=scenario.rpc_timeout,
            write_timeout=scenario.write_timeout,
            max_retries=scenario.max_retries,
            batching=scenario.batching,
            cache_capacity=scenario.cache_capacity,
            eviction=scenario.eviction,
        ),
        seed=scenario.seed,
        strict_oracle=False,
        obs=obs,
    )
    if scenario.replicas > 1:
        # Replicated authority (repro.replica): PaxosLease-elected master
        # per group, hosts r{j} (or s{k}r{j} per shard).
        if scenario.shards > 1:
            return build_sharded_replicated_cluster(
                scenario.shards, scenario.replicas, **common
            )
        return build_replicated_cluster(scenario.replicas, **common)
    if scenario.shards > 1:
        # The sharded build path is taken only above one shard, so
        # ``shards: 1`` scenarios run the legacy wiring verbatim and
        # reproduce their golden digests and traces byte-for-byte.
        return build_sharded_cluster(scenario.shards, **common)
    return build_cluster(**common)


def apply_fault(cluster: Cluster, scenario: Scenario, fault: Fault) -> None:
    """Schedule one scenario fault on the cluster's injector."""
    injector = cluster.faults
    if fault.kind == "crash":
        injector.crash_window(fault.host, fault.at, fault.duration)
    elif fault.kind == "partition":
        others = [h for h in scenario.hosts if h not in fault.hosts]
        injector.partition_window(fault.hosts, others, fault.at, fault.duration)
    elif fault.kind == "loss":
        injector.loss_window(fault.rate, fault.at, fault.duration)
    elif fault.kind == "clock_step":
        injector.step_clock_at(fault.host, fault.at, fault.delta)
    elif fault.kind == "clock_drift":
        injector.set_drift_at(fault.host, fault.at, fault.drift)
    else:
        raise ValueError(f"unknown fault kind {fault.kind!r}")


def _crash_times(scenario: Scenario) -> dict[str, list[float]]:
    """Host -> crash onset times, for the liveness exemption."""
    times: dict[str, list[float]] = {}
    for fault in scenario.faults:
        if fault.kind == "crash":
            times.setdefault(fault.host, []).append(fault.at)
    return times


def run_scenario(
    scenario: Scenario,
    obs=None,
    probe: bool = True,
    policy: TermPolicy | None = None,
) -> RunResult:
    """Run one scenario end to end and evaluate every invariant.

    Args:
        scenario: what to run (validated first).
        obs: optional :class:`~repro.obs.bus.TraceBus` threaded through
            the cluster — used by the explorer to capture failing traces.
        probe: issue post-drain convergence probes (disable only when
            comparing network stats against an externally driven run).
        policy: term-policy override for experiments; the scenario's
            fixed term otherwise.
    """
    scenario.validate()
    cluster = build_scenario_cluster(scenario, obs=obs, policy=policy)
    datums = [cluster.store.file_datum(f"/file{i}") for i in range(scenario.n_files)]

    submissions: list[tuple] = []  # (op, client, op_id)

    def make_submit(op):
        def submit(client) -> None:
            if op.kind == "read":
                op_id = client.read(datums[op.file])
            else:
                op_id = client.write(datums[op.file], scenario.content_for(op))
            submissions.append((op, client, op_id))

        return submit

    for op in scenario.ops:
        cluster.schedule_op(op.at, op.client, make_submit(op))
    for fault in scenario.faults:
        apply_fault(cluster, scenario, fault)

    cluster.run(until=scenario.duration + scenario.drain)

    stats = {
        host: {"sent": dict(s.sent), "received": dict(s.received)}
        for host, s in cluster.network.stats.items()
    }

    # -- liveness: submitted ops must finish unless a later crash ate them --
    crash_times = _crash_times(scenario)
    liveness_failures = []
    completed = 0
    for op, client, op_id in submissions:
        if op_id in client.results:
            completed += 1
            continue
        host = client.host.name
        if any(at >= op.at - 1e-9 for at in crash_times.get(host, ())):
            continue  # volatile state lost with the crash: op legitimately gone
        liveness_failures.append(
            f"{op.kind} op {op_id} on {host} (submitted t={op.at:.3f}) never completed"
        )

    # -- convergence: post-drain probe reads see the committed state --------
    convergence_failures = []
    if probe:
        expected = {datum: cluster.store.version_of(datum) for datum in datums}
        probes: list[tuple] = []
        for client in cluster.live_clients():
            for datum in datums:
                op_id = client.read(datum)
                try:
                    result = cluster.run_until_complete(client, op_id, limit=PROBE_LIMIT)
                except TimeoutError:
                    convergence_failures.append(
                        f"probe read of {datum} on {client.host.name} timed out"
                    )
                    continue
                probes.append((client, datum, result))
        for client, datum, result in probes:
            if not result.ok:
                convergence_failures.append(
                    f"probe read of {datum} on {client.host.name} failed: {result.error}"
                )
            elif not scenario.may_violate:
                version, _payload = result.value
                if version != expected[datum]:
                    convergence_failures.append(
                        f"probe read of {datum} on {client.host.name} saw v{version}, "
                        f"store has v{expected[datum]}"
                    )

    return RunResult(
        scenario=scenario,
        violations=tuple(str(v) for v in cluster.oracle.violations),
        liveness_failures=tuple(liveness_failures),
        convergence_failures=tuple(convergence_failures),
        reads_checked=cluster.oracle.reads_checked,
        ops_submitted=len(submissions),
        ops_completed=completed,
        fingerprint=cluster.oracle.history_fingerprint(),
        stats=stats,
        events_executed=cluster.kernel.executed,
    )
