"""Delta-debugging failure minimization.

When the explorer finds a failing scenario it usually contains hundreds
of irrelevant operations.  :func:`shrink_scenario` applies the classic
ddmin algorithm (Zeller & Hildebrandt) over the scenario's combined
event list — operations and faults are equally removable — re-running
the simulation after each candidate removal and keeping the removal
whenever the original failure class still reproduces.  A final greedy
single-event pass and a duration trim squeeze out the stragglers, so a
§5 clock-fault violation typically minimizes to its essential shape:
one caching read, the clock fault, one conflicting write, one stale
read.

Determinism note: a candidate scenario keeps the original kernel seed,
so candidate runs are themselves reproducible; the emitted minimal
scenario replays its violation from the file alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.check.runner import RunResult, run_scenario
from repro.check.scenario import Scenario

#: Default cap on simulation runs one shrink may spend.
DEFAULT_BUDGET = 400


def ddmin(
    items: Sequence,
    test: Callable[[list], bool],
    minimize_singles: bool = True,
) -> list:
    """Minimize ``items`` to a subset for which ``test`` still holds.

    ``test(items)`` is assumed True on entry.  Complements of ever-finer
    chunk partitions are tried first (removing large chunks early), then
    an optional greedy one-by-one pass removes single stragglers.  The
    result is 1-minimal up to the test's determinism.
    """
    items = list(items)
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if candidate and test(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(items), granularity * 2)
    if minimize_singles:
        index = 0
        while index < len(items) and len(items) > 1:
            candidate = items[:index] + items[index + 1:]
            if candidate and test(candidate):
                items = candidate
            else:
                index += 1
    return items


@dataclass
class ShrinkResult:
    """The outcome of one minimization.

    Attributes:
        scenario: the minimal scenario that still reproduces the failure.
        result: the run result of that minimal scenario.
        runs: simulations spent during shrinking.
        original_events: event count before shrinking.
    """

    scenario: Scenario
    result: RunResult
    runs: int
    original_events: int

    @property
    def events(self) -> int:
        """Event count of the minimal scenario."""
        return self.scenario.event_count


def shrink_scenario(
    scenario: Scenario,
    reproduces: Callable[[RunResult], bool],
    budget: int = DEFAULT_BUDGET,
) -> ShrinkResult:
    """Minimize ``scenario`` while ``reproduces(run_scenario(s))`` holds.

    Args:
        scenario: the failing scenario (``reproduces`` must hold on it —
            a ValueError is raised otherwise, since shrinking a
            non-failure would "minimize" to garbage).
        reproduces: failure predicate over a run result, e.g.
            ``lambda r: "consistency" in r.failure_kinds`` or
            ``lambda r: r.violated``.
        budget: maximum simulation runs to spend; when exhausted the best
            scenario found so far is returned.
    """
    runs = 0
    cache: dict[tuple, bool] = {}

    events: list[tuple[str, object]] = [("op", op) for op in scenario.ops]
    events += [("fault", f) for f in scenario.faults]

    def rebuild(evts: list) -> Scenario:
        ops = tuple(e for kind, e in evts if kind == "op")
        faults = tuple(e for kind, e in evts if kind == "fault")
        return scenario.with_events(ops, faults)

    def test(evts: list) -> bool:
        nonlocal runs
        key = tuple(id(e) for _, e in evts)
        if key in cache:
            return cache[key]
        if runs >= budget:
            return False
        runs += 1
        verdict = reproduces(run_scenario(rebuild(evts)))
        cache[key] = verdict
        return verdict

    if not test(events):
        raise ValueError("scenario does not reproduce the failure; nothing to shrink")

    minimal_events = ddmin(events, test)
    minimal = rebuild(minimal_events)

    # Trim the tail: end the run just after the last event (plus a lease
    # term and the probe drain) when that still reproduces.
    last_at = max(
        [op.at for op in minimal.ops]
        + [f.at + f.duration for f in minimal.faults]
    )
    trimmed = Scenario.from_json(
        {**minimal.to_json(), "duration": round(last_at + minimal.term + 1.0, 3)}
    )
    if trimmed.duration < minimal.duration:
        runs += 1
        if runs <= budget and reproduces(run_scenario(trimmed)):
            minimal = trimmed

    final = run_scenario(minimal)
    return ShrinkResult(
        scenario=minimal,
        result=final,
        runs=runs,
        original_events=scenario.event_count,
    )


def strip_unused(scenario: Scenario) -> Scenario:
    """Drop trailing clients and files no remaining event references.

    A cosmetic post-pass for repro files: after event removal the
    scenario may still declare four clients although only ``c0``/``c1``
    appear.  Host indices are *not* remapped (that would change kernel
    event ordering), only unused trailing ranges are removed.
    """
    max_client = 0
    max_file = 0
    for op in scenario.ops:
        max_client = max(max_client, op.client)
        max_file = max(max_file, op.file)
    for fault in scenario.faults:
        for host in (fault.host, *fault.hosts):
            if host.startswith("c") and host[1:].isdigit():
                max_client = max(max_client, int(host[1:]))
    return Scenario.from_json(
        {
            **scenario.to_json(),
            "n_clients": max(1, max_client + 1),
            "n_files": max(1, max_file + 1),
        }
    )
