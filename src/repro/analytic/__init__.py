"""The paper's analytic model of lease performance (§3.1).

:mod:`repro.analytic.params` holds the performance parameters of Table 1
and the measured V-system values of Table 2; :mod:`repro.analytic.model`
implements formulas (1) and (2), the lease benefit factor alpha, the
break-even term, and the derived quantities used by Figures 1-3.
"""

from repro.analytic.model import (
    added_delay,
    alpha,
    alpha_unicast,
    approval_messages,
    approval_time,
    break_even_term,
    effective_term,
    extension_delay,
    relative_consistency_load,
    response_degradation,
    server_consistency_load,
    term_for_extension_reduction,
    total_relative_load,
)
from repro.analytic.params import (
    FIG3_WAN_PARAMS,
    V_PARAMS,
    SystemParams,
    v_params,
    wan_params,
)

__all__ = [
    "SystemParams",
    "V_PARAMS",
    "FIG3_WAN_PARAMS",
    "v_params",
    "wan_params",
    "effective_term",
    "server_consistency_load",
    "relative_consistency_load",
    "total_relative_load",
    "extension_delay",
    "approval_time",
    "approval_messages",
    "added_delay",
    "response_degradation",
    "alpha",
    "alpha_unicast",
    "break_even_term",
    "term_for_extension_reduction",
]
