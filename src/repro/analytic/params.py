"""Performance parameters (Table 1) and the measured V values (Table 2).

Table 2 of the paper is partially illegible in the available text; only
``R = 0.864/sec`` survives.  The remaining values are reconstructed by
back-solving the paper's own headline numbers — the derivation is recorded
in DESIGN.md §3 and checked by ``tests/analytic/test_claims_consistency.py``:

* ``W = 0.040/s`` reproduces "at S = 10, total server traffic is 20% less
  than for a zero term and 4.1% over that for an infinite term";
* ``m_prop = 0.27 ms`` and ``m_proc = 0.5 ms`` give the measured V IPC
  round trip of 2.54 ms (``2*m_prop + 4*m_proc``);
* ``epsilon = 100 ms`` ("small relative to the lease terms of several
  seconds", §5);
* consistency is 30% of total server traffic at a zero lease term (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SystemParams:
    """The parameters of Table 1.

    Attributes:
        n_clients: N — number of client caches.
        read_rate: R — reads per second per client.
        write_rate: W — writes per second per client.
        sharing: S — number of caches sharing the file at each write.
        m_prop: propagation delay for a message, seconds.
        m_proc: time to process a message (send or receive), seconds.
        epsilon: allowance for clock uncertainty, seconds.
        consistency_share_at_zero: fraction of total server traffic that is
            consistency traffic when the lease term is zero (measured 30%
            in the V trace; used to turn relative consistency load into
            relative *total* load).
    """

    n_clients: int = 20
    read_rate: float = 0.864
    write_rate: float = 0.040
    sharing: int = 1
    m_prop: float = 0.27e-3
    m_proc: float = 0.5e-3
    epsilon: float = 0.1
    consistency_share_at_zero: float = 0.30

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        if self.read_rate < 0 or self.write_rate < 0:
            raise ValueError("negative access rates")
        if self.sharing < 1:
            raise ValueError("sharing degree S must be >= 1")
        if self.m_prop < 0 or self.m_proc < 0 or self.epsilon < 0:
            raise ValueError("negative time parameters")
        if not 0 < self.consistency_share_at_zero <= 1:
            raise ValueError("consistency share must be in (0, 1]")

    @property
    def round_trip(self) -> float:
        """Unicast request/response time: ``2*m_prop + 4*m_proc``."""
        return 2 * self.m_prop + 4 * self.m_proc

    @property
    def grant_overhead(self) -> float:
        """Time by which the client-side term is shortened:
        ``m_prop + 2*m_proc`` (lease delivery) — epsilon is added separately.
        """
        return self.m_prop + 2 * self.m_proc

    def with_sharing(self, sharing: int) -> "SystemParams":
        """A copy with a different sharing degree S."""
        return replace(self, sharing=sharing)


#: The reconstructed V-system parameter set (Table 2), S = 1.
V_PARAMS = SystemParams()

#: Figure 3's wide-area variant: round trip of 100 ms with unchanged
#: processing times, i.e. m_prop = (100 ms - 4*m_proc) / 2 = 49 ms.
FIG3_WAN_PARAMS = SystemParams(m_prop=49.0e-3)


def v_params(sharing: int = 1, **overrides) -> SystemParams:
    """The V parameter set with sharing degree ``sharing``."""
    return replace(V_PARAMS, sharing=sharing, **overrides)


def wan_params(sharing: int = 1, **overrides) -> SystemParams:
    """The Figure 3 (100 ms RTT) parameter set."""
    return replace(FIG3_WAN_PARAMS, sharing=sharing, **overrides)
