"""Formulas (1) and (2) of the paper and their derived quantities.

All functions take a :class:`~repro.analytic.params.SystemParams` and the
server-side lease term ``term`` (``t_s``) in seconds; ``math.inf`` denotes
an infinite term.  The model (§3.1):

* effective client term      ``t_c = max(0, t_s - (m_prop + 2 m_proc) - eps)``
* extension (read) messages  ``2NR / (1 + R t_c)`` per second
* approval (write) messages  ``N S W`` per second, for S > 1 and t_s > 0
* approval time              ``t_w = 2 m_prop + (S + 2) m_proc`` for S > 1
* added delay per operation  ``[R * RTT/(1 + R t_c) + W t_w] / (R + W)``
* lease benefit factor       ``alpha = 2R / (S W)``
* break-even term            ``t_c > 1 / (R (alpha - 1))`` when alpha > 1

A zero term is special (and better than a tiny-but-positive term): clients
never hold usable leases, every read checks with the server (two messages),
and writes need no approvals because nobody holds a lease.
"""

from __future__ import annotations

import math

from repro.analytic.params import SystemParams


def effective_term(params: SystemParams, term: float) -> float:
    """Client-side effective term ``t_c`` for a server term ``t_s``.

    The term is shortened by the time to receive the lease
    (``m_prop + 2*m_proc``) plus the clock-uncertainty allowance epsilon.
    """
    if term < 0:
        raise ValueError(f"negative lease term: {term}")
    if math.isinf(term):
        return math.inf
    return max(0.0, term - params.grant_overhead - params.epsilon)


def extension_messages(params: SystemParams, term: float) -> float:
    """Lease-extension messages handled by the server per second.

    Each extension is a request/reply pair (2 messages), amortized over the
    ``1 + R*t_c`` reads a lease covers.
    """
    t_c = effective_term(params, term)
    if math.isinf(t_c):
        return 0.0
    n, r = params.n_clients, params.read_rate
    return 2 * n * r / (1 + r * t_c)


def approval_messages(params: SystemParams, term: float) -> float:
    """Write-approval messages handled by the server per second.

    One multicast request plus S - 1 replies (the writer's approval rides
    on its write request) = S messages per write.  Zero when nothing is
    shared (S = 1) or when the term is zero (nobody holds leases).
    """
    if params.sharing <= 1 or term == 0:
        return 0.0
    return params.n_clients * params.sharing * params.write_rate


def server_consistency_load(params: SystemParams, term: float) -> float:
    """Formula (1): consistency-related messages per second at the server."""
    if term == 0:
        return 2 * params.n_clients * params.read_rate
    return extension_messages(params, term) + approval_messages(params, term)


def relative_consistency_load(params: SystemParams, term: float) -> float:
    """Consistency load normalized to the zero-term load ``2NR``."""
    zero = 2 * params.n_clients * params.read_rate
    if zero == 0:
        raise ValueError("zero read rate: relative load undefined")
    return server_consistency_load(params, term) / zero


def total_relative_load(params: SystemParams, term: float) -> float:
    """Total server traffic relative to the zero-term total.

    With consistency making up fraction ``c`` of total traffic at term
    zero (30% in the V trace), total(term)/total(0) =
    ``(1 - c) + c * relative_consistency_load(term)``.
    """
    c = params.consistency_share_at_zero
    return (1 - c) + c * relative_consistency_load(params, term)


def approval_time(params: SystemParams, term: float) -> float:
    """Time ``t_w`` for a write to gain approval of all leaseholders.

    ``2*m_prop + (S + 2)*m_proc`` for S > 1 (multicast request, S - 1
    replies processed serially, the writer's approval implicit).  Zero when
    unshared or when the term is zero.
    """
    if params.sharing <= 1 or term == 0:
        return 0.0
    return 2 * params.m_prop + (params.sharing + 2) * params.m_proc


def extension_delay(params: SystemParams, term: float) -> float:
    """Mean extension delay added to each read.

    A read outside the term pays a full round trip; amortized over the
    ``1 + R*t_c`` reads per lease.
    """
    t_c = effective_term(params, term)
    if math.isinf(t_c):
        return 0.0
    return params.round_trip / (1 + params.read_rate * t_c)


def added_delay(params: SystemParams, term: float) -> float:
    """Formula (2): mean consistency delay added to each read or write."""
    r, w = params.read_rate, params.write_rate
    if r + w == 0:
        return 0.0
    read_part = r * extension_delay(params, term)
    write_part = w * approval_time(params, term)
    return (read_part + write_part) / (r + w)


def response_degradation(params: SystemParams, term: float) -> float:
    """Relative response-time degradation versus an infinite term.

    Figure 3 reports the added delay of a finite term as a fraction of the
    application-level response time; the paper's quoted 10.1% / 3.6%
    figures correspond to normalizing by one network round trip (see
    DESIGN.md §6), which we adopt:

    ``(added_delay(term) - added_delay(inf)) / round_trip``
    """
    base = added_delay(params, math.inf)
    return (added_delay(params, term) - base) / params.round_trip


def alpha(params: SystemParams) -> float:
    """Lease benefit factor ``alpha = 2R / (S W)`` (multicast approvals).

    Intuitively the read/write ratio scaled by the sharing overhead; a
    sufficiently long term reduces server load exactly when alpha > 1.
    """
    if params.write_rate == 0:
        return math.inf
    return 2 * params.read_rate / (params.sharing * params.write_rate)


def alpha_unicast(params: SystemParams) -> float:
    """Benefit factor when approvals use unicast: ``R / ((S-1) W)``.

    Without multicast a write costs ``2*(S-1)`` messages (footnote 6), so
    the benefit threshold moves.  Infinite when S = 1 or W = 0.
    """
    if params.sharing <= 1 or params.write_rate == 0:
        return math.inf
    return params.read_rate / ((params.sharing - 1) * params.write_rate)


def break_even_term(params: SystemParams, unicast: bool = False) -> float:
    """Effective term above which leases beat the zero-term protocol.

    ``t_c > 1 / (R (alpha - 1))`` when alpha > 1; infinite when alpha <= 1
    (leasing cannot reduce server load, so the term should be zero).
    """
    a = alpha_unicast(params) if unicast else alpha(params)
    if a <= 1:
        return math.inf
    return 1.0 / (params.read_rate * (a - 1))


def multi_file_load(params_list: list[SystemParams], term: float) -> float:
    """Total consistency load over several independent files.

    §3.1: "the load due to multiple leases sums directly" — per-file
    extension traffic without batching.
    """
    return sum(server_consistency_load(p, term) for p in params_list)


def batched_combination(params_list: list[SystemParams]) -> SystemParams:
    """Combine per-file parameters under batched extension (§3.1).

    "The cache can batch its requests for extensions so that a single
    request covers many files.  R and W then correspond to the total rates
    for all covered files."  The combined sharing degree is the
    write-weighted mean (it only enters through the ``S*W`` product of
    approval traffic, which sums directly).

    Raises:
        ValueError: empty input or inconsistent N / message parameters.
    """
    if not params_list:
        raise ValueError("no files to combine")
    first = params_list[0]
    for p in params_list[1:]:
        if (p.n_clients, p.m_prop, p.m_proc, p.epsilon) != (
            first.n_clients,
            first.m_prop,
            first.m_proc,
            first.epsilon,
        ):
            raise ValueError("files must share client count and message timing")
    total_r = sum(p.read_rate for p in params_list)
    total_w = sum(p.write_rate for p in params_list)
    total_sw = sum(p.sharing * p.write_rate for p in params_list)
    sharing = max(1, round(total_sw / total_w)) if total_w > 0 else 1
    return SystemParams(
        n_clients=first.n_clients,
        read_rate=total_r,
        write_rate=total_w,
        sharing=sharing,
        m_prop=first.m_prop,
        m_proc=first.m_proc,
        epsilon=first.epsilon,
        consistency_share_at_zero=first.consistency_share_at_zero,
    )


def batched_load(params_list: list[SystemParams], term: float) -> float:
    """Consistency load when one extension covers all the files (§3.1).

    The extension traffic amortizes over the *combined* read rate; the
    approval traffic still sums per file (each write is its own event).
    """
    combined = batched_combination(params_list)
    if term == 0:
        return 2 * combined.n_clients * combined.read_rate
    approvals = sum(approval_messages(p, term) for p in params_list)
    return extension_messages(combined, term) + approvals


def term_for_extension_reduction(params: SystemParams, reduction: float) -> float:
    """Server term ``t_s`` at which extension traffic falls by ``reduction``.

    Solves ``1/(1 + R t_c) = 1 - reduction`` for ``t_c`` and adds back the
    grant overhead and epsilon.  ``reduction = 0.9`` with V parameters
    yields roughly the paper's 10-second recommendation.

    Args:
        reduction: target fractional reduction of extension traffic
            relative to a zero term, in [0, 1).
    """
    if not 0 <= reduction < 1:
        raise ValueError(f"reduction must be in [0, 1): {reduction}")
    if params.read_rate == 0:
        return 0.0
    t_c = reduction / ((1 - reduction) * params.read_rate)
    if t_c == 0:
        return 0.0
    return t_c + params.grant_overhead + params.epsilon
