"""Xerox DFS breakable locks (§6).

"The Xerox DFS uses breakable locks with timeouts ...  the timeouts
specify a minimum time before which a lock can be broken ...  However,
because clients do not use the lock timeout value and they are not
reliably notified when a lock is broken, the scheme degenerates to leasing
with a term of zero."

Model: the server grants a lock whose *hold* time (what the client trusts)
exceeds its *minimum* time (what the server honors before breaking it for
a writer).  Concretely this is the lease engine with the server-side lease
table recording ``min_time`` while replies advertise ``hold_time`` — after
``min_time`` a write proceeds with no notification to the holder, so a
trusting client serves stale reads for up to ``hold_time - min_time``.
A client that refuses to trust the advertised hold (the only safe choice)
must check on every read: exactly a zero-term lease.
"""

from __future__ import annotations

from repro.protocol.server import ServerEngine
from repro.sim.driver import Cluster, build_cluster
from repro.types import DatumId, HostId


class DfsLockServerEngine(ServerEngine):
    """Lease server whose grants promise more than the server honors.

    ``lock_min_time`` is the paper's lock timeout (server-side truth);
    ``lock_hold_time`` is how long clients keep trusting the lock.  With
    ``lock_hold_time > lock_min_time`` this reproduces DFS's unsafe gap;
    setting them equal recovers correct leasing.
    """

    #: Configured via make_dfs_lock_cluster (the driver's engine factory
    #: passes only the standard arguments).
    lock_min_time: float = 2.0
    lock_hold_time: float = 10.0

    def _grant(self, datum: DatumId, src: HostId, now: float) -> tuple[float, str | None]:
        """Record the breakable minimum; advertise the full hold time."""
        if self.table.write_pending(datum):
            # inherited callers check first; keep the parent's invariant
            return super()._grant(datum, src, now)
        self.table.grant(datum, src, now, self.lock_min_time)
        return self.lock_hold_time, None


def make_dfs_lock_cluster(
    min_time: float = 2.0, hold_time: float = 10.0, **kwargs
) -> Cluster:
    """Build a cluster running breakable locks.

    The oracle is non-strict: staleness is the measured outcome.
    """
    from repro.lease.policy import FixedTermPolicy

    class _Engine(DfsLockServerEngine):
        lock_min_time = min_time
        lock_hold_time = hold_time

    kwargs.setdefault("strict_oracle", False)
    return build_cluster(
        policy=FixedTermPolicy(min_time),
        server_engine_factory=_Engine,
        **kwargs,
    )
