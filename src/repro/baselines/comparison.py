"""Head-to-head protocol comparison on one shared workload.

Runs the same seeded workload — shared reads and writes plus a partition
window — under each §6 protocol and tabulates what the paper argues in
prose: leases with a ~10 s term match the callback scheme's traffic while
keeping check-on-use's consistency, and unlike both they bound the damage
of partitions; TTL hints and breakable locks trade staleness for
simplicity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.baselines.locks import make_dfs_lock_cluster
from repro.baselines.ttl import make_ttl_cluster
from repro.experiments.common import CONSISTENCY_KINDS, render_table
from repro.lease.policy import FixedTermPolicy, InfiniteTermPolicy, ZeroTermPolicy
from repro.protocol.client import ClientConfig
from repro.sim.driver import Cluster, build_cluster
from repro.storage.store import FileStore

N_CLIENTS = 6
N_FILES = 3
DURATION = 120.0
PARTITION = (40.0, 25.0)  # isolate c0 for 25 s starting at t=40


@dataclass(frozen=True)
class ProtocolOutcome:
    """Measured behaviour of one protocol on the standard workload."""

    protocol: str
    consistency_msgs: int
    mean_read_latency: float
    stale_reads: int
    reads_checked: int
    writes_completed: int
    writes_submitted: int
    mean_write_latency: float

    @property
    def write_availability(self) -> float:
        """Fraction of submitted writes that completed successfully."""
        if not self.writes_submitted:
            return 1.0
        return self.writes_completed / self.writes_submitted


def _setup(store: FileStore) -> None:
    for i in range(N_FILES):
        store.create_file(f"/file{i}", b"init")


def _drive(cluster: Cluster, seed: int) -> ProtocolOutcome | None:
    """Schedule the standard workload, run, and collect metrics."""
    rng = random.Random(seed)
    datums = [cluster.store.file_datum(f"/file{i}") for i in range(N_FILES)]
    read_ops: list[tuple[int, int]] = []
    write_ops: list[tuple[int, int]] = []
    for idx, client in enumerate(cluster.clients):
        t = rng.uniform(0.0, 1.0)
        while t < DURATION:
            datum = rng.choice(datums)
            if rng.random() < 0.1:
                cluster.kernel.schedule_at(
                    t,
                    lambda c=client, d=datum, i=idx: c.host.up
                    and write_ops.append((i, c.write(d, b"w"))),
                )
            else:
                cluster.kernel.schedule_at(
                    t,
                    lambda c=client, d=datum, i=idx: c.host.up
                    and read_ops.append((i, c.read(d))),
                )
            t += rng.expovariate(1.0)
    start, length = PARTITION
    cluster.faults.partition_window(
        ["c0"], ["server"] + [f"c{i}" for i in range(1, N_CLIENTS)], start, length
    )
    cluster.run(until=DURATION + 120.0)

    read_results = [
        cluster.clients[i].results[op]
        for i, op in read_ops
        if op in cluster.clients[i].results
    ]
    ok_reads = [r for r in read_results if r.ok]
    write_results = [
        cluster.clients[i].results[op]
        for i, op in write_ops
        if op in cluster.clients[i].results
    ]
    ok_writes = [w for w in write_results if w.ok]
    return ProtocolOutcome(
        protocol="",
        consistency_msgs=cluster.network.stats["server"].handled(CONSISTENCY_KINDS),
        mean_read_latency=sum(r.latency for r in ok_reads) / len(ok_reads),
        stale_reads=len(cluster.oracle.violations),
        reads_checked=cluster.oracle.reads_checked,
        writes_completed=len(ok_writes),
        writes_submitted=len(write_ops),
        mean_write_latency=(
            sum(w.latency for w in ok_writes) / len(ok_writes) if ok_writes else 0.0
        ),
    )


def _with_name(outcome: ProtocolOutcome, name: str) -> ProtocolOutcome:
    from dataclasses import replace

    return replace(outcome, protocol=name)


def compare_protocols(seed: int = 0) -> list[ProtocolOutcome]:
    """Run the standard workload under every protocol."""
    client_config = ClientConfig(rpc_timeout=1.0, write_timeout=5.0, max_retries=10)
    builders: list[tuple[str, Callable[[], Cluster]]] = [
        (
            "leases (10 s)",
            lambda: build_cluster(
                n_clients=N_CLIENTS,
                policy=FixedTermPolicy(10.0),
                setup_store=_setup,
                client_config=client_config,
                strict_oracle=False,
                seed=seed,
            ),
        ),
        (
            "check-on-use (term 0)",
            lambda: build_cluster(
                n_clients=N_CLIENTS,
                policy=ZeroTermPolicy(),
                setup_store=_setup,
                client_config=client_config,
                strict_oracle=False,
                seed=seed,
            ),
        ),
        (
            "callbacks (term inf)",
            lambda: build_cluster(
                n_clients=N_CLIENTS,
                policy=InfiniteTermPolicy(),
                setup_store=_setup,
                client_config=client_config,
                strict_oracle=False,
                seed=seed,
            ),
        ),
        (
            "NFS TTL (10 s)",
            lambda: make_ttl_cluster(
                ttl=10.0,
                n_clients=N_CLIENTS,
                setup_store=_setup,
                client_config=client_config,
                seed=seed,
            ),
        ),
        (
            "DFS locks (min 2 s / hold 10 s)",
            lambda: make_dfs_lock_cluster(
                min_time=2.0,
                hold_time=10.0,
                n_clients=N_CLIENTS,
                setup_store=_setup,
                client_config=client_config,
                seed=seed,
            ),
        ),
    ]
    outcomes = []
    for name, builder in builders:
        outcomes.append(_with_name(_drive(builder(), seed), name))
    return outcomes


def render(outcomes: list[ProtocolOutcome] | None = None) -> str:
    """Plain-text comparison table."""
    outcomes = outcomes or compare_protocols()
    rows = [
        [
            o.protocol,
            o.consistency_msgs,
            round(1e3 * o.mean_read_latency, 3),
            f"{o.stale_reads}/{o.reads_checked}",
            f"{100 * o.write_availability:.0f}%",
            round(1e3 * o.mean_write_latency, 2),
        ]
        for o in outcomes
    ]
    return (
        "Protocol comparison (6 clients, 3 shared files, 120 s, one 25 s partition)\n"
        + render_table(
            [
                "protocol",
                "consistency msgs",
                "read delay (ms)",
                "stale reads",
                "write avail",
                "write delay (ms)",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    print(render())
