"""Baseline consistency protocols from the paper's related work (§6).

Two of the baselines are *degenerate lease terms* and need no new code:

* **check-on-use** (Sprite between opens, RFS, the Andrew prototype) —
  ``ZeroTermPolicy``: every read checks with the server;
* **callbacks** (the revised Andrew file system) — ``InfiniteTermPolicy``:
  minimal traffic, but a crashed or partitioned leaseholder blocks writes
  forever (or, in Andrew's actual behaviour, the server proceeds and the
  client reads stale data until it polls).

Two have genuinely different protocols, implemented here as alternate
server engines behind the same driver interface:

* :mod:`repro.baselines.ttl` — **NFS-style TTL hints**: the server stamps
  replies with a time-to-live and *never* waits for or notifies anyone.
  Fast and simple, but reads can be stale for up to a TTL after any write.
* :mod:`repro.baselines.locks` — **Xerox DFS breakable locks**: a lock
  carries a minimum time before it may be broken; the server honors only
  that minimum, while clients keep trusting the lock and are not reliably
  notified of breaks.  Trusting clients read stale data; distrusting
  clients must check every read — the paper's point that the scheme
  "degenerates to leasing with a term of zero".

:mod:`repro.baselines.comparison` runs one shared workload under every
protocol and tabulates consistency traffic, delay, staleness, and
write availability under partition.
"""

from repro.baselines.comparison import ProtocolOutcome, compare_protocols, render
from repro.baselines.locks import DfsLockServerEngine, make_dfs_lock_cluster
from repro.baselines.ttl import TtlServerEngine, make_ttl_cluster

__all__ = [
    "TtlServerEngine",
    "make_ttl_cluster",
    "DfsLockServerEngine",
    "make_dfs_lock_cluster",
    "compare_protocols",
    "ProtocolOutcome",
    "render",
]
