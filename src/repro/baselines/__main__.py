"""Run the §6 protocol comparison: ``python -m repro.baselines``."""

from repro.baselines.comparison import render

if __name__ == "__main__":
    print(render())
