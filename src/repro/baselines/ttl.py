"""NFS-style TTL hints (§6): caching without a consistency guarantee.

"In the Internet Domain Name Service, for example, a name server specifies
a time-to-live for the data it returns, and clients cache the data for
that period.  However, the data may be modified during that interval."
NFS caches file attributes/data the same way.

:class:`TtlServerEngine` speaks the same wire protocol as the lease server
— reads and extensions return a "term" (here: the TTL) — but it commits
writes *immediately*: no approval callbacks, no waiting for expiry, no
lease table.  The unmodified :class:`~repro.protocol.client.ClientEngine`
then behaves exactly like an NFS client: it serves reads from cache for a
TTL and can return stale data for up to one TTL after another client's
write.  The consistency oracle quantifies that staleness.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.protocol.effects import Effect, Send
from repro.protocol.messages import (
    ExtendGrant,
    ExtendReply,
    ExtendRequest,
    Message,
    NamespaceReply,
    NamespaceRequest,
    ReadReply,
    ReadRequest,
    WriteReply,
    WriteRequest,
)
from repro.sim.driver import Cluster, build_cluster
from repro.storage.store import FileStore
from repro.types import DatumId, DatumKind, HostId


class TtlServerEngine:
    """A server that hands out TTL hints and never coordinates writes.

    Duck-compatible with :class:`~repro.protocol.server.ServerEngine` so the
    standard simulation driver can host it.  The ``policy`` supplies the
    TTL (its term for the datum).
    """

    def __init__(
        self, name, store: FileStore, policy, config=None, installed=None, now=0.0, obs=None
    ):
        self.name = name
        self.store = store
        self.policy = policy
        self.config = config
        self.installed = installed  # unused: no announcements in NFS
        self.obs = obs  # accepted for driver compatibility; TTL emits nothing
        self._write_dedup: dict[tuple[HostId, int], tuple[int, str | None]] = {}

    def startup_effects(self, now: float) -> list[Effect]:
        """No timers: a stateless TTL server has nothing to maintain."""
        return []

    def handle_message(self, msg: Message, src: HostId, now: float) -> list[Effect]:
        """Serve reads/extends with TTL hints; commit writes immediately."""
        if isinstance(msg, ReadRequest):
            return self._read(msg, src, now)
        if isinstance(msg, ExtendRequest):
            return self._extend(msg, src, now)
        if isinstance(msg, WriteRequest):
            return self._write(msg, src, now)
        if isinstance(msg, NamespaceRequest):
            return self._namespace(msg, src, now)
        raise ReproError(f"TTL server got unexpected {type(msg).__name__}")

    def handle_timer(self, key: str, now: float) -> list[Effect]:
        """The TTL server never arms timers."""
        raise ReproError(f"TTL server has no timers (got {key!r})")

    # -- handlers ---------------------------------------------------------------

    def _ttl(self, datum: DatumId, src: HostId, now: float) -> float:
        return self.policy.term(datum, src, now)

    def _read(self, msg: ReadRequest, src: HostId, now: float) -> list[Effect]:
        if not self.store.datum_exists(msg.datum):
            return [Send(src, ReadReply(msg.req_id, msg.datum, error="no such datum"))]
        version, payload = self.store.read_datum(msg.datum)
        return [
            Send(
                src,
                ReadReply(
                    msg.req_id,
                    msg.datum,
                    version=version,
                    payload=None if msg.cached_version == version else payload,
                    term=self._ttl(msg.datum, src, now),
                ),
            )
        ]

    def _extend(self, msg: ExtendRequest, src: HostId, now: float) -> list[Effect]:
        grants, denied = [], []
        for datum, cached_version in msg.items:
            if not self.store.datum_exists(datum):
                denied.append(datum)
                continue
            version, payload = self.store.read_datum(datum)
            changed = cached_version != version
            grants.append(
                ExtendGrant(
                    datum,
                    self._ttl(datum, src, now),
                    version,
                    payload=payload if changed else None,
                    changed=changed,
                )
            )
        return [Send(src, ExtendReply(msg.req_id, tuple(grants), tuple(denied)))]

    def _write(self, msg: WriteRequest, src: HostId, now: float) -> list[Effect]:
        key = (src, msg.write_seq)
        if key in self._write_dedup:
            version, error = self._write_dedup[key]
            return [Send(src, WriteReply(msg.req_id, msg.datum, version=version, error=error))]
        if msg.datum.kind is not DatumKind.FILE or not self.store.datum_exists(msg.datum):
            return [Send(src, WriteReply(msg.req_id, msg.datum, error="no such datum"))]
        # The defining behaviour: commit immediately, tell nobody.
        version = self.store.commit_file_write(msg.datum, msg.content, now)
        self._write_dedup[key] = (version, None)
        return [Send(src, WriteReply(msg.req_id, msg.datum, version=version))]

    def _namespace(self, msg: NamespaceRequest, src: HostId, now: float) -> list[Effect]:
        key = (src, msg.write_seq)
        if key in self._write_dedup:
            _, error = self._write_dedup[key]
            return [Send(src, NamespaceReply(msg.req_id, msg.op, error=error))]
        error, result = None, None
        try:
            if msg.op == "mkdir":
                result = self.store.namespace.mkdir(msg.args[0])
            elif msg.op == "bind":
                path, content, _class = msg.args
                result = self.store.create_file(path, content, now=now).file_id
            elif msg.op == "unbind":
                self.store.unlink(msg.args[0])
            elif msg.op == "rename":
                self.store.namespace.rename(*msg.args)
            else:
                error = f"unknown namespace op {msg.op!r}"
        except ReproError as exc:
            error = str(exc)
        self._write_dedup[key] = (0, error)
        return [Send(src, NamespaceReply(msg.req_id, msg.op, error=error, result=result))]

    def lease_count(self) -> int:
        """The NFS server keeps no per-client state ('stateless')."""
        return 0


def make_ttl_cluster(ttl: float = 10.0, **kwargs) -> Cluster:
    """Build a cluster running the TTL protocol (oracle non-strict, since
    staleness is expected and measured)."""
    from repro.lease.policy import FixedTermPolicy

    kwargs.setdefault("strict_oracle", False)
    return build_cluster(
        policy=FixedTermPolicy(ttl),
        server_engine_factory=TtlServerEngine,
        **kwargs,
    )
