"""Simulated network with the paper's timing model.

Message timing (paper §3.1): processing costs ``m_proc`` at the sender and
at the receiver (serialized through each host's CPU), and the wire adds a
propagation delay ``m_prop``.  Hence a unicast request/response round trip
costs ``2*m_prop + 4*m_proc`` and a multicast with ``n`` replies costs
``2*m_prop + (n+3)*m_proc`` — both of which the simulator reproduces
exactly (see ``tests/sim/test_network.py``).

Failure model: per-delivery message loss (probability or targeted filters)
and partitions expressed as link predicates.  Delivery per ordered host pair
is FIFO (constant propagation delay plus serialized CPUs), which the
protocol relies on in the same way V's IPC did.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.errors import HostDownError, SimulationError
from repro.obs.events import NET_DROP, NET_DUP, NET_RECV, NET_SEND
from repro.sim.host import Host
from repro.sim.kernel import Kernel
from repro.types import HostId

#: A link filter returns False to block delivery from ``src`` to ``dst``.
LinkFilter = Callable[[HostId, HostId], bool]


@dataclass(frozen=True)
class NetworkParams:
    """Timing and loss parameters (Table 1 of the paper).

    Attributes:
        m_prop: one-way propagation delay in seconds.
        m_proc: per-message processing time (send or receive) in seconds.
        loss_rate: probability that any single delivery leg is lost.
        duplicate_rate: probability that a delivered message arrives twice
            (the second copy one propagation delay later) — datagram
            networks duplicate under retransmission and routing flaps, and
            the protocol must be idempotent against it.
    """

    m_prop: float = 0.27e-3
    m_proc: float = 0.5e-3
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.m_prop < 0 or self.m_proc < 0:
            raise ValueError("negative message times")
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss_rate out of range: {self.loss_rate}")
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError(f"duplicate_rate out of range: {self.duplicate_rate}")

    @property
    def round_trip(self) -> float:
        """Unicast request/response time: ``2*m_prop + 4*m_proc``."""
        return 2 * self.m_prop + 4 * self.m_proc


@dataclass
class MessageStats:
    """Per-host message accounting, broken down by message kind.

    The paper measures server *consistency load* as the number of messages
    handled (sent or received) by the server per unit time; drivers tag
    each message with a kind string (e.g. ``"lease/extend"``) so the
    experiment harness can separate consistency traffic from data traffic.
    """

    sent: Counter = field(default_factory=Counter)
    received: Counter = field(default_factory=Counter)

    def handled(self, kinds: Iterable[str] | None = None) -> int:
        """Total messages sent plus received, optionally filtered by kind."""
        if kinds is None:
            return sum(self.sent.values()) + sum(self.received.values())
        kindset = set(kinds)
        return sum(n for k, n in self.sent.items() if k in kindset) + sum(
            n for k, n in self.received.items() if k in kindset
        )

    def handled_prefix(self, prefix: str) -> int:
        """Messages sent plus received whose kind starts with ``prefix``."""
        return sum(n for k, n in self.sent.items() if k.startswith(prefix)) + sum(
            n for k, n in self.received.items() if k.startswith(prefix)
        )


class Network:
    """Message fabric connecting simulated hosts."""

    def __init__(self, kernel: Kernel, params: NetworkParams | None = None, obs: Any = None):
        self.kernel = kernel
        self.params = params or NetworkParams()
        self.hosts: dict[HostId, Host] = {}
        self.groups: dict[str, set[HostId]] = {}
        self.stats: dict[HostId, MessageStats] = {}
        self._link_filters: list[LinkFilter] = []
        self.dropped = 0
        self.duplicated = 0
        #: Optional :class:`~repro.obs.bus.TraceBus` receiving per-leg
        #: ``net.*`` events (sends, receives, drops, duplicates).
        self.obs = obs
        #: Optional tap called as ``on_deliver(src, dst, payload, kind)``
        #: at the top of every delivery attempt (before the host-up
        #: check), used by :class:`~repro.sim.timeline.Timeline`.  A
        #: declared hook, not a monkeypatched method: the compiled build
        #: forbids replacing methods on instances.
        self.on_deliver: Callable[[HostId, HostId, Any, str], None] | None = None

    # -- topology -------------------------------------------------------------

    def attach(self, host: Host) -> None:
        """Register a host on the network."""
        if host.name in self.hosts:
            raise SimulationError(f"duplicate host name {host.name!r}")
        self.hosts[host.name] = host
        self.stats[host.name] = MessageStats()

    def join_group(self, group: str, host: HostId) -> None:
        """Add ``host`` to multicast group ``group`` (created on demand)."""
        self._require_host(host)
        self.groups.setdefault(group, set()).add(host)

    def leave_group(self, group: str, host: HostId) -> None:
        """Remove ``host`` from ``group``; missing membership is ignored."""
        self.groups.get(group, set()).discard(host)

    # -- fault hooks ------------------------------------------------------------

    def add_link_filter(self, link_filter: LinkFilter) -> None:
        """Install a predicate that can block deliveries (partitions)."""
        self._link_filters.append(link_filter)

    def remove_link_filter(self, link_filter: LinkFilter) -> None:
        """Remove a previously installed link filter."""
        self._link_filters.remove(link_filter)

    def link_up(self, src: HostId, dst: HostId) -> bool:
        """True when every installed filter permits ``src -> dst``."""
        filters = self._link_filters
        if not filters:
            return True
        return all(f(src, dst) for f in filters)

    # -- transmission ----------------------------------------------------------

    def unicast(self, src: HostId, dst: HostId, payload: Any, kind: str = "msg") -> None:
        """Send one message from ``src`` to ``dst``.

        Costs ``m_proc`` on the sender's CPU; arrives ``m_prop`` after the
        send-side processing completes; costs ``m_proc`` on the receiver's
        CPU before the handler runs.
        """
        hosts = self.hosts
        sender = hosts.get(src)
        if sender is None:
            raise SimulationError(f"unknown host {src!r}")
        if dst not in hosts:
            raise SimulationError(f"unknown host {dst!r}")
        if not sender.up:
            return
        self._send(sender, src, (dst,), payload, kind)

    def multicast(self, src: HostId, group: str, payload: Any, kind: str = "msg") -> int:
        """Send one message to every member of ``group`` except the sender.

        One send-side ``m_proc`` regardless of fan-out (the V host-group
        model); each recipient pays its own receive-side ``m_proc``.

        Returns:
            The number of recipients targeted (before loss/partition).
        """
        sender = self._require_host(src)
        if not sender.up:
            return 0
        members = [m for m in self.groups.get(group, ()) if m != src]
        return self._send(sender, src, members, payload, kind)

    def multisend(
        self, src: HostId, dsts: Iterable[HostId], payload: Any, kind: str = "msg"
    ) -> int:
        """Multicast to an explicit recipient list (no named group).

        Same cost model as :meth:`multicast`: one send-side ``m_proc``
        regardless of fan-out.  The sender is excluded if listed.

        Returns:
            The number of recipients targeted.
        """
        sender = self._require_host(src)
        if not sender.up:
            return 0
        members = [d for d in dsts if d != src]
        for dst in members:
            self._require_host(dst)
        return self._send(sender, src, members, payload, kind)

    # -- internals ---------------------------------------------------------------

    def _send(
        self, sender: Host, src: HostId, dsts: Iterable[HostId], payload: Any, kind: str
    ) -> int:
        """Charge one send-side ``m_proc`` and put a copy on the wire per leg.

        The message counts as sent (and the sender's CPU is charged) even
        with an empty recipient list — a multicast to an empty group is
        still a send on the V model this reproduces.
        """
        kernel = self.kernel
        params = self.params
        self.stats[src].sent[kind] += 1
        obs = self.obs
        active = obs is not None and obs.active
        # Host.occupy_cpu, unrolled on the two hottest call sites (here and
        # _arrive): serialize on the sender's CPU, one m_proc per send.
        free = sender._cpu_free_at
        now = kernel.now
        if free < now:
            free = now
        sender._cpu_free_at = free = free + params.m_proc
        arrival = free + params.m_prop
        count = 0
        for dst in dsts:
            if active:
                obs.emit(NET_SEND, kernel.now, src, src=src, dst=dst, kind=kind)
            # One leg tuple carries the message through every hop
            # (arrive, deliver, duplicate re-arrival): post_args/defer_args
            # take it as the prebuilt argument tuple, so the per-hop
            # *args repack is pooled away.
            kernel.post_args(arrival, self._arrive, (src, dst, payload, kind))
            count += 1
        return count

    def _arrive(
        self, src: HostId, dst: HostId, payload: Any, kind: str, duplicate: bool = False
    ) -> None:
        """Wire arrival at ``dst``: apply faults, then queue receive processing."""
        host = self.hosts[dst]
        obs = self.obs
        kernel = self.kernel
        params = self.params
        # link_up() inlined for the common no-filter case.
        if not host.up or (self._link_filters and not self.link_up(src, dst)):
            self.dropped += 1
            if obs is not None and obs.active:
                reason = "host_down" if not host.up else "partition"
                obs.emit(
                    NET_DROP, kernel.now, dst,
                    src=src, dst=dst, kind=kind, reason=reason,
                )
            return
        if params.loss_rate and kernel.rng.random() < params.loss_rate:
            self.dropped += 1
            if obs is not None and obs.active:
                obs.emit(
                    NET_DROP, kernel.now, dst,
                    src=src, dst=dst, kind=kind, reason="loss",
                )
            return
        if (
            not duplicate
            and params.duplicate_rate
            and kernel.rng.random() < params.duplicate_rate
        ):
            self.duplicated += 1
            if obs is not None and obs.active:
                obs.emit(NET_DUP, kernel.now, dst, src=src, dst=dst, kind=kind)
            kernel.post_args(
                kernel.now + params.m_prop,
                self._arrive,
                (src, dst, payload, kind, True),
            )
        # Host.occupy_cpu, unrolled (see _send): receive-side m_proc.
        free = host._cpu_free_at
        now = kernel.now
        if free < now:
            free = now
        host._cpu_free_at = completion = free + params.m_proc
        # Tail call: defer_args may run _deliver inline (one kernel event
        # per leg instead of two) when no queued event precedes
        # `completion` — any pending fault, duplicate arrival or competing
        # delivery forces the queued slow path, so state checks inside
        # _deliver observe exactly what they would have.  The leg tuple is
        # reused as-is; _deliver re-resolves the host (registered once,
        # never replaced; crash only flips ``up``, re-checked at delivery
        # time).
        kernel.defer_args(completion, self._deliver, (src, dst, payload, kind))

    def _deliver(self, src: HostId, dst: HostId, payload: Any, kind: str) -> None:
        on_deliver = self.on_deliver
        if on_deliver is not None:
            on_deliver(src, dst, payload, kind)
        host = self.hosts[dst]
        obs = self.obs
        if not host.up:
            self.dropped += 1
            if obs is not None and obs.active:
                obs.emit(
                    NET_DROP, self.kernel.now, dst,
                    src=src, dst=dst, kind=kind, reason="host_down",
                )
            return
        self.stats[dst].received[kind] += 1
        if obs is not None and obs.active:
            obs.emit(NET_RECV, self.kernel.now, dst, src=src, dst=dst, kind=kind)
        # host.deliver, unwrapped: ``up`` was checked just above, and the
        # handler-missing error is preserved.
        handler = host._handler
        if handler is None:
            raise HostDownError(f"host {dst!r} has no message handler")
        handler(payload, src)

    def _require_host(self, name: HostId) -> Host:
        host = self.hosts.get(name)
        if host is None:
            raise SimulationError(f"unknown host {name!r}")
        return host
