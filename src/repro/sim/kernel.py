"""Discrete-event simulation kernel.

Events are ``(time, seq)``-ordered callbacks, where ``seq`` is a global
tie-breaker that makes same-instant events fire in schedule order.
Determinism is a hard requirement — the benchmark figures must be
reproducible — so all randomness flows through the kernel's seeded
:class:`random.Random` and nothing reads the wall clock.

Storage is a two-tier timer wheel (see DESIGN.md §10).  Entries are
plain tuples ``(time, seq, handle, fn, args)`` — ordering comparisons
never leave C, because ``(time, seq)`` is unique so tuple comparison
stops before reaching the payload.  The wheel buckets events by
``int(time / granularity)``: the bucket currently being drained is kept
as a sorted list consumed by index (``_due``/``_due_pos``), future
buckets are unsorted append-only lists adopted (and sorted once) in slot
order, and a plain heap (``_far``) catches deadlines past the wheel's
horizon.  With the wheel disabled every entry takes the ``_far`` heap,
which is the classic event-heap the wheel replaced — the equivalence
suite runs both and demands byte-identical traces.

Two scheduling fast paths exist for hot, never-cancelled events:
:meth:`Kernel.post_at` skips the :class:`EventHandle` allocation, and
:meth:`Kernel.defer` additionally *executes inline* — consuming a
``seq``, advancing ``now`` and incrementing ``executed`` exactly as a
queued event would — when it can prove no other pending event precedes
it (see the method docstring for the soundness argument).

Cancellation is lazy (a cancelled handle is skipped when consumed),
which keeps ``cancel`` O(1) — but cancelled entries must not be allowed
to pile up: a renewal-heavy run arms and cancels one timer per lease
extension, so the kernel compacts its queues whenever cancelled entries
outnumber the live ones.  Live/cancelled counts are maintained
incrementally, making :meth:`Kernel.pending` O(1).
"""

from __future__ import annotations

import gc
import random
from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs.events import KERNEL_COMPACT

#: Process-wide fast-path defaults, captured by each :class:`Kernel` at
#: construction.  Module globals (not class attributes) on purpose: the
#: compiled build forbids class-attribute monkeypatching, so the
#: equivalence suite flips these through :func:`set_fast_paths` instead.
_default_inline = True
_default_wheel = True


def set_fast_paths(
    inline: bool | None = None, wheel: bool | None = None
) -> tuple[bool, bool]:
    """Set the fast-path defaults for kernels built after this call.

    ``None`` leaves a flag unchanged.  Returns the previous
    ``(inline, wheel)`` pair so callers can restore it.
    """
    global _default_inline, _default_wheel
    previous = (_default_inline, _default_wheel)
    if inline is not None:
        _default_inline = inline
    if wheel is not None:
        _default_wheel = wheel
    return previous


def get_fast_paths() -> tuple[bool, bool]:
    """The current ``(inline, wheel)`` fast-path defaults."""
    return (_default_inline, _default_wheel)

#: Minimum number of cancelled entries before compaction is considered;
#: below this the dead weight is cheaper than a rebuild.
_COMPACT_MIN = 64

#: Wheel bucket width in virtual seconds.  Sized for the lease workload:
#: network legs (sub-millisecond) land in the draining bucket, lease-term
#: timers (seconds to a minute) spread across future buckets instead of
#: churning a single heap.
_GRANULARITY = 0.05
_INV_GRANULARITY = 1.0 / _GRANULARITY

#: Absolute virtual time beyond which entries bypass the wheel and take
#: the fallback heap: keeps slot ids bounded and handles ``inf`` safely.
_FAR_CUTOFF = float(2**40)

#: Consumed-prefix length beyond which ``_due`` is trimmed before an
#: insort, so long single-bucket runs do not shift dead entries forever.
_DUE_TRIM = 512


class EventHandle:
    """A scheduled event's cancellation token.

    Cancelled events stay queued but are skipped when consumed (lazy
    deletion), which keeps cancellation O(1).  The owning kernel is
    notified so it can keep live/cancelled counts and compact when dead
    entries pile up.  The callback itself lives in the kernel's entry
    tuple, not here — hot paths that never cancel skip this object
    entirely (:meth:`Kernel.post_at`).
    """

    __slots__ = ("time", "seq", "cancelled", "_kernel")

    def __init__(self, time: float, seq: int):
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._kernel: "Kernel | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        kernel = self._kernel
        if kernel is not None:  # still queued
            self._kernel = None
            kernel._note_cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Kernel:
    """The simulation event loop.

    Attributes:
        rng: seeded random source shared by all stochastic components
            (workload generators, loss models) for reproducible runs.
        obs: optional :class:`~repro.obs.bus.TraceBus` receiving kernel
            events (queue compactions).
        executed: total events fired so far — the denominator of the
            harness's throughput metric (simulated events per wall
            second, see ``repro.parallel.baseline``).
        inline: arm the :meth:`defer` inline continuation (captured from
            :func:`set_fast_paths` at construction; the equivalence
            suite flips it to pit the fast path against plain
            scheduling).
        wheel: use the timer wheel (captured at construction; when
            False every entry takes the fallback heap).
    """

    def __init__(self, seed: int = 0, obs: Any = None):
        #: Current virtual time in seconds (plain attribute on purpose —
        #: it is read on every hot path; treat as read-only outside the
        #: kernel).
        self.now = 0.0
        self._seq = 0
        self._live = 0  # non-cancelled entries queued
        self._cancelled = 0  # cancelled entries still queued
        self.executed = 0
        self.rng = random.Random(seed)
        self.obs = obs
        #: Fast-path switches, captured from the module defaults (see
        #: :func:`set_fast_paths`) so one kernel's configuration is
        #: immutable for its lifetime.
        self.inline = _default_inline
        self.wheel = _default_wheel
        # -- timer wheel state (see module docstring) --
        self._due: list[tuple] = []  # draining bucket, sorted
        self._due_pos = 0  # next index to consume in _due
        self._cur_slot = -1  # slot of the draining bucket
        self._buckets: dict[int, list[tuple]] = {}  # future slots, unsorted
        self._slots: list[int] = []  # heap of occupied future slot ids
        self._far: list[tuple] = []  # heap for beyond-horizon deadlines
        self._cutoff = _FAR_CUTOFF if self.wheel else 0.0
        self._horizon: float | None = None  # run(until=...) bound
        self._in_run = False  # inside run()'s loop (defer may inline)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        handle = EventHandle(time, self._seq)
        handle._kernel = self
        # _insert body, inlined: schedule/cancel churn (one arm + cancel
        # per lease renewal) makes this the hottest handle-bearing entry
        # point, and the extra frame is measurable at that call volume.
        entry = (time, self._seq, handle, fn, args)
        self._seq += 1
        self._live += 1
        if time < self._cutoff:
            slot = int(time * _INV_GRANULARITY)
            if slot > self._cur_slot:
                bucket = self._buckets.get(slot)
                if bucket is None:
                    self._buckets[slot] = [entry]
                    heappush(self._slots, slot)
                else:
                    bucket.append(entry)
                return handle
            pos = self._due_pos
            if pos > _DUE_TRIM:
                del self._due[:pos]
                self._due_pos = pos = 0
            insort(self._due, entry, lo=pos)
        else:
            heappush(self._far, entry)
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        handle = EventHandle(time, self._seq)
        handle._kernel = self
        self._insert(time, handle, fn, args)
        return handle

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule without a cancellation handle (hot never-cancelled paths).

        Identical ordering and counters to :meth:`schedule_at`; the only
        difference is that no :class:`EventHandle` is allocated, so the
        event cannot be cancelled.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        # _insert, inlined: this is the hottest scheduling entry point (every
        # network leg), and the extra frame is measurable at this call volume.
        entry = (time, self._seq, None, fn, args)
        self._seq += 1
        self._live += 1
        if time < self._cutoff:
            slot = int(time * _INV_GRANULARITY)
            if slot > self._cur_slot:
                bucket = self._buckets.get(slot)
                if bucket is None:
                    self._buckets[slot] = [entry]
                    heappush(self._slots, slot)
                else:
                    bucket.append(entry)
                return
            pos = self._due_pos
            if pos > _DUE_TRIM:
                del self._due[:pos]
                self._due_pos = pos = 0
            insort(self._due, entry, lo=pos)
        else:
            heappush(self._far, entry)

    def defer(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """:meth:`post_at`, executed inline when provably next.

        The head of the draining bucket answers the quiet question
        directly in the common cases (clearly later → quiet, live and not
        later → not quiet); only a cancelled head needs the pruning walk
        in :meth:`_quiet_until`.

        Inline execution consumes the next ``seq``, advances ``now`` to
        ``time`` and increments ``executed`` — byte-identical to queueing
        the event and consuming it on the next loop iteration.  That is
        sound only when nothing else may run in between, so it requires
        *all* of:

        * the kernel is inside :meth:`run` (``step()`` must return after
          one event, and its callers meter progress by call count);
        * ``time`` does not exceed the active ``until`` horizon (the
          queued event would have been left pending);
        * no queued entry precedes ``(time, next_seq)`` — since
          ``next_seq`` is larger than every queued seq, this reduces to
          ``head.time > time``.

        Otherwise it degrades to a normal handle-less insertion.
        """
        if self._in_run and self.inline and time >= self.now:
            horizon = self._horizon
            if horizon is None or time <= horizon:
                due = self._due
                pos = self._due_pos
                if pos < len(due):
                    e = due[pos]
                    if e[0] > time:
                        quiet = True
                    else:
                        h = e[2]
                        if h is None or not h.cancelled:
                            quiet = False
                        else:
                            quiet = self._quiet_until(time)
                else:
                    quiet = self._quiet_until(time)
                if quiet:
                    self._seq += 1
                    self.now = time
                    self.executed += 1
                    fn(*args)
                    return
        self.post_at(time, fn, *args)

    def post_args(self, time: float, fn: Callable[..., Any], args: tuple) -> None:
        """:meth:`post_at` taking a prebuilt argument tuple.

        ``*args`` packing allocates a fresh tuple on every call; hot
        callers that carry one message through several hops (the
        network's send → arrive → deliver chain) build the tuple once
        and pool it across the hops instead.  Ordering and counters are
        identical to :meth:`post_at`.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        entry = (time, self._seq, None, fn, args)
        self._seq += 1
        self._live += 1
        if time < self._cutoff:
            slot = int(time * _INV_GRANULARITY)
            if slot > self._cur_slot:
                bucket = self._buckets.get(slot)
                if bucket is None:
                    self._buckets[slot] = [entry]
                    heappush(self._slots, slot)
                else:
                    bucket.append(entry)
                return
            pos = self._due_pos
            if pos > _DUE_TRIM:
                del self._due[:pos]
                self._due_pos = pos = 0
            insort(self._due, entry, lo=pos)
        else:
            heappush(self._far, entry)

    def defer_args(self, time: float, fn: Callable[..., Any], args: tuple) -> None:
        """:meth:`defer` taking a prebuilt argument tuple (see
        :meth:`post_args`).  The inline-execution soundness argument is
        :meth:`defer`'s, unchanged."""
        if self._in_run and self.inline and time >= self.now:
            horizon = self._horizon
            if horizon is None or time <= horizon:
                due = self._due
                pos = self._due_pos
                if pos < len(due):
                    e = due[pos]
                    if e[0] > time:
                        quiet = True
                    else:
                        h = e[2]
                        if h is None or not h.cancelled:
                            quiet = False
                        else:
                            quiet = self._quiet_until(time)
                else:
                    quiet = self._quiet_until(time)
                if quiet:
                    self._seq += 1
                    self.now = time
                    self.executed += 1
                    fn(*args)
                    return
        self.post_args(time, fn, args)

    def _insert(
        self,
        time: float,
        handle: EventHandle | None,
        fn: Callable[..., Any],
        args: tuple,
    ) -> None:
        """Place one entry into the wheel tier its deadline belongs to."""
        entry = (time, self._seq, handle, fn, args)
        self._seq += 1
        self._live += 1
        if time < self._cutoff:
            slot = int(time * _INV_GRANULARITY)
            if slot > self._cur_slot:
                bucket = self._buckets.get(slot)
                if bucket is None:
                    self._buckets[slot] = [entry]
                    heappush(self._slots, slot)
                else:
                    bucket.append(entry)
                return
            # lands in (or before) the draining bucket: keep _due sorted
            pos = self._due_pos
            if pos > _DUE_TRIM:
                del self._due[:pos]
                self._due_pos = pos = 0
            insort(self._due, entry, lo=pos)
        else:
            heappush(self._far, entry)

    # -- consumption ----------------------------------------------------------

    def _advance(self) -> tuple | None:
        """Expose the next live entry without consuming it.

        Prunes cancelled entries ahead of the first live one (mirroring
        the old heap's lazy pop-at-top) and adopts future buckets —
        sorting each exactly once — as the draining bucket empties.
        Returns the entry, or None when nothing live is queued.  After a
        non-None return the entry sits either at ``_due[_due_pos]`` or at
        ``_far[0]`` with ``_due`` exhausted; :meth:`_consume` takes it.
        """
        while True:
            due = self._due
            pos = self._due_pos
            n = len(due)
            while pos < n:
                entry = due[pos]
                handle = entry[2]
                if handle is None or not handle.cancelled:
                    self._due_pos = pos
                    return entry
                pos += 1
                self._cancelled -= 1
            self._due_pos = pos
            # draining bucket exhausted: adopt the next occupied slot
            slots = self._slots
            while slots:
                slot = heappop(slots)
                bucket = self._buckets.pop(slot, None)
                if bucket is None:  # emptied by compaction
                    continue
                bucket.sort()
                self._due = bucket
                self._due_pos = 0
                self._cur_slot = slot
                break
            else:
                far = self._far
                while far:
                    entry = far[0]
                    handle = entry[2]
                    if handle is None or not handle.cancelled:
                        return entry
                    heappop(far)
                    self._cancelled -= 1
                return None

    def _quiet_until(self, time: float) -> bool:
        """True when no live entry precedes ``(time, next_seq)``.

        Used by :meth:`defer`'s inline check.  Prunes cancelled entries
        strictly before the bound — exactly the set the run loop would
        have pruned before consuming a queued event at that key — and
        deliberately no further, so the live/cancelled counters (and
        hence compaction points) match the queued path while the inlined
        callback runs.
        """
        while True:
            due = self._due
            pos = self._due_pos
            n = len(due)
            while pos < n:
                entry = due[pos]
                if entry[0] > time:
                    self._due_pos = pos
                    return True
                handle = entry[2]
                if handle is None or not handle.cancelled:
                    self._due_pos = pos
                    return False
                pos += 1
                self._cancelled -= 1
            self._due_pos = pos
            slots = self._slots
            while slots:
                slot = heappop(slots)
                bucket = self._buckets.pop(slot, None)
                if bucket is None:
                    continue
                bucket.sort()
                self._due = bucket
                self._due_pos = 0
                self._cur_slot = slot
                break
            else:
                far = self._far
                while far:
                    entry = far[0]
                    if entry[0] > time:
                        return True
                    handle = entry[2]
                    if handle is None or not handle.cancelled:
                        return False
                    heappop(far)
                    self._cancelled -= 1
                return True

    def _consume(self, entry: tuple) -> None:
        """Take the entry :meth:`_advance` just exposed off its queue."""
        if self._due_pos < len(self._due):
            self._due_pos += 1
        else:
            heappop(self._far)
        handle = entry[2]
        if handle is not None:
            handle._kernel = None
        self._live -= 1
        self.now = entry[0]
        self.executed += 1

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain.

        The draining-bucket fast path mirrors :meth:`run`'s; bucket
        adoption and the far heap fall back to _advance/_consume.
        """
        due = self._due
        pos = self._due_pos
        n = len(due)
        while pos < n:
            entry = due[pos]
            h = entry[2]
            if h is None or not h.cancelled:
                self._due_pos = pos + 1
                if h is not None:
                    h._kernel = None
                self._live -= 1
                self.now = entry[0]
                self.executed += 1
                entry[3](*entry[4])
                return True
            pos += 1
            self._cancelled -= 1
        self._due_pos = pos
        entry = self._advance()
        if entry is None:
            return False
        self._consume(entry)
        entry[3](*entry[4])
        return True

    def run(self, until: float | None = None) -> None:
        """Run events in order.

        Args:
            until: if given, stop once the next event lies beyond ``until``
                and advance ``now`` to exactly ``until``; if None, run until
                no events remain.
        """
        saved_run, saved_horizon = self._in_run, self._horizon
        self._in_run = True
        self._horizon = until
        # Event tuples die by refcount, so generational GC only finds the
        # cycle garbage (engines, handlers) — suppress the automatic
        # collections while draining; the deferred sweep happens when the
        # caller's gc state is restored below.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            advance = self._advance
            consume = self._consume
            # The common case — next live entry already sits in the draining
            # bucket — is handled inline; only bucket adoption and the far
            # heap go through _advance/_consume.  Callbacks may insert into
            # _due or trigger compaction, so _due/_due_pos are re-read from
            # self on every iteration; nothing is cached across a callback.
            while True:
                due = self._due
                pos = self._due_pos
                n = len(due)
                entry = None
                while pos < n:
                    e = due[pos]
                    h = e[2]
                    if h is None or not h.cancelled:
                        entry = e
                        break
                    pos += 1
                    self._cancelled -= 1
                if entry is not None:
                    time = entry[0]
                    if until is not None and time > until:
                        self._due_pos = pos
                        break
                    self._due_pos = pos + 1
                    handle = entry[2]
                    if handle is not None:
                        handle._kernel = None
                    self._live -= 1
                    self.now = time
                    self.executed += 1
                    entry[3](*entry[4])
                    continue
                self._due_pos = pos
                entry = advance()
                if entry is None or (until is not None and entry[0] > until):
                    break
                consume(entry)
                entry[3](*entry[4])
        finally:
            self._in_run = saved_run
            self._horizon = saved_horizon
            if gc_was_enabled:
                gc.enable()
        if until is not None and until > self.now:
            self.now = until

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    # -- internals -----------------------------------------------------------

    def _size(self) -> int:
        """Total stored entries, live and cancelled (test/debug hook)."""
        return (
            len(self._due)
            - self._due_pos
            + sum(len(b) for b in self._buckets.values())
            + len(self._far)
        )

    def _note_cancel(self) -> None:
        """A queued handle was cancelled; compact when dead weight wins.

        The threshold (more cancelled than live, past a fixed floor)
        bounds storage at roughly twice the live count, so timer-churn
        workloads — one set + cancel per lease renewal — run in O(live)
        memory instead of growing without bound.
        """
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > _COMPACT_MIN and self._cancelled > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from every tier, preserving order."""

        def alive(entry: tuple) -> bool:
            handle = entry[2]
            return handle is None or not handle.cancelled

        removed = self._cancelled
        self._due = [e for e in self._due[self._due_pos:] if alive(e)]
        self._due_pos = 0
        for slot in list(self._buckets):
            bucket = [e for e in self._buckets[slot] if alive(e)]
            if bucket:
                self._buckets[slot] = bucket
            else:
                del self._buckets[slot]  # stale slot id left in _slots
        self._far = [e for e in self._far if alive(e)]
        heapify(self._far)
        self._cancelled = 0
        obs = self.obs
        if obs is not None and obs.active:
            obs.emit(KERNEL_COMPACT, self.now, None, removed=removed, live=self._live)

    def __repr__(self) -> str:
        return f"Kernel(now={self.now:.6f}, pending={self.pending()})"
