"""Discrete-event simulation kernel.

A classic event-heap design: events are ``(time, seq)``-ordered callbacks,
where ``seq`` is a global tie-breaker that makes same-instant events fire in
schedule order.  Determinism is a hard requirement — the benchmark figures
must be reproducible — so all randomness flows through the kernel's seeded
:class:`random.Random` and nothing reads the wall clock.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable

from repro.errors import SimulationError


class EventHandle:
    """A scheduled event; supports cancellation.

    Cancelled events stay in the heap but are skipped when popped (lazy
    deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Kernel:
    """The simulation event loop.

    Attributes:
        rng: seeded random source shared by all stochastic components
            (workload generators, loss models) for reproducible runs.
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._seq = 0
        self._heap: list[EventHandle] = []
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        handle = EventHandle(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            handle.fn(*handle.args)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events in order.

        Args:
            until: if given, stop once the next event lies beyond ``until``
                and advance ``now`` to exactly ``until``; if None, run until
                the heap is empty.
        """
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            heapq.heappop(self._heap)
            self._now = head.time
            head.fn(*head.args)
        if until is not None and until > self._now:
            self._now = until

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for handle in self._heap if not handle.cancelled)

    def __repr__(self) -> str:
        return f"Kernel(now={self._now:.6f}, pending={self.pending()})"
