"""Discrete-event simulation kernel.

A classic event-heap design: events are ``(time, seq)``-ordered callbacks,
where ``seq`` is a global tie-breaker that makes same-instant events fire in
schedule order.  Determinism is a hard requirement — the benchmark figures
must be reproducible — so all randomness flows through the kernel's seeded
:class:`random.Random` and nothing reads the wall clock.

Cancellation is lazy (a cancelled handle is skipped when popped), which
keeps ``cancel`` O(1) — but cancelled entries must not be allowed to pile
up: a renewal-heavy run arms and cancels one timer per lease extension, so
the kernel compacts the heap whenever cancelled entries outnumber the live
ones.  Live/cancelled counts are maintained incrementally, making
:meth:`Kernel.pending` O(1).
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable

from repro.errors import SimulationError
from repro.obs.events import KERNEL_COMPACT

#: Minimum number of cancelled heap entries before compaction is considered;
#: below this the dead weight is cheaper than a rebuild.
_COMPACT_MIN = 64


class EventHandle:
    """A scheduled event; supports cancellation.

    Cancelled events stay in the heap but are skipped when popped (lazy
    deletion), which keeps cancellation O(1).  The owning kernel is
    notified so it can keep live/cancelled counts and compact the heap
    when dead entries pile up.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_kernel")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._kernel: "Kernel | None" = None

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        kernel = self._kernel
        if kernel is not None:  # still sitting in the heap
            self._kernel = None
            kernel._note_cancel()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, seq={self.seq}, {state})"


class Kernel:
    """The simulation event loop.

    Attributes:
        rng: seeded random source shared by all stochastic components
            (workload generators, loss models) for reproducible runs.
        obs: optional :class:`~repro.obs.bus.TraceBus` receiving kernel
            events (heap compactions).
        executed: total events fired so far — the denominator of the
            harness's throughput metric (simulated events per wall
            second, see ``repro.parallel.baseline``).
    """

    def __init__(self, seed: int = 0, obs=None):
        self._now = 0.0
        self._seq = 0
        self._heap: list[EventHandle] = []
        self._live = 0  # non-cancelled entries in the heap
        self._cancelled = 0  # cancelled entries still in the heap
        self.executed = 0
        self.rng = random.Random(seed)
        self.obs = obs

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        handle = EventHandle(time, self._seq, fn, args)
        handle._kernel = self
        self._seq += 1
        heapq.heappush(self._heap, handle)
        self._live += 1
        return handle

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                self._cancelled -= 1
                continue
            handle._kernel = None
            self._live -= 1
            self._now = handle.time
            self.executed += 1
            handle.fn(*handle.args)
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events in order.

        Args:
            until: if given, stop once the next event lies beyond ``until``
                and advance ``now`` to exactly ``until``; if None, run until
                the heap is empty.
        """
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                self._cancelled -= 1
                continue
            if until is not None and head.time > until:
                break
            heapq.heappop(self._heap)
            head._kernel = None
            self._live -= 1
            self._now = head.time
            self.executed += 1
            head.fn(*head.args)
        if until is not None and until > self._now:
            self._now = until

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1)."""
        return self._live

    # -- internals -----------------------------------------------------------

    def _note_cancel(self) -> None:
        """A handle in the heap was cancelled; compact when dead weight wins.

        The threshold (more cancelled than live, past a fixed floor) bounds
        the heap at roughly twice the live count, so timer-churn workloads —
        one set + cancel per lease renewal — run in O(live) memory instead
        of growing without bound.
        """
        self._live -= 1
        self._cancelled += 1
        if self._cancelled > _COMPACT_MIN and self._cancelled > self._live:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries."""
        removed = self._cancelled
        self._heap = [h for h in self._heap if not h.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        obs = self.obs
        if obs is not None and obs.active:
            obs.emit(KERNEL_COMPACT, self._now, None, removed=removed, live=self._live)

    def __repr__(self) -> str:
        return f"Kernel(now={self._now:.6f}, pending={self.pending()})"
