"""Fault injection for the simulated network and hosts.

The paper's fault model (§5) is non-Byzantine: hosts crash (losing volatile
state), messages are lost, and the network may partition.  Clock faults are
injected separately through host clock parameters.  This module provides
composable injectors for all of these, plus schedule helpers so experiments
can script fault windows declaratively.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.sim.kernel import Kernel
from repro.sim.network import Network
from repro.types import HostId


class Partition:
    """A two-sided network partition.

    While active, no message crosses between ``side_a`` and ``side_b`` in
    either direction.  Hosts in neither side are unaffected.
    """

    def __init__(self, side_a: Iterable[HostId], side_b: Iterable[HostId]):
        self.side_a = frozenset(side_a)
        self.side_b = frozenset(side_b)
        if self.side_a & self.side_b:
            raise ValueError("partition sides overlap")
        self.active = False

    def __call__(self, src: HostId, dst: HostId) -> bool:
        """Link filter: False blocks the delivery."""
        if not self.active:
            return True
        crosses = (src in self.side_a and dst in self.side_b) or (
            src in self.side_b and dst in self.side_a
        )
        return not crosses


class FaultInjector:
    """Schedules faults against a network on its kernel's virtual clock."""

    def __init__(self, network: Network):
        self.network = network
        self.kernel: Kernel = network.kernel

    # -- partitions -------------------------------------------------------------

    def partition(
        self, side_a: Iterable[HostId], side_b: Iterable[HostId]
    ) -> Partition:
        """Start a partition immediately; returns the handle to heal it."""
        part = Partition(side_a, side_b)
        part.active = True
        self.network.add_link_filter(part)
        return part

    def heal(self, part: Partition) -> None:
        """End a partition."""
        part.active = False
        self.network.remove_link_filter(part)

    def partition_window(
        self,
        side_a: Iterable[HostId],
        side_b: Iterable[HostId],
        start: float,
        duration: float,
    ) -> Partition:
        """Schedule a partition over ``[start, start + duration)``."""
        part = Partition(side_a, side_b)

        def _start() -> None:
            part.active = True
            self.network.add_link_filter(part)

        def _stop() -> None:
            self.heal(part)

        self.kernel.schedule_at(start, _start)
        self.kernel.schedule_at(start + duration, _stop)
        return part

    # -- crashes ------------------------------------------------------------------

    def crash_at(self, host: HostId, time: float) -> None:
        """Schedule a crash of ``host`` at virtual time ``time``."""
        self.kernel.schedule_at(time, self.network.hosts[host].crash)

    def restart_at(self, host: HostId, time: float) -> None:
        """Schedule a restart of ``host`` at virtual time ``time``."""
        self.kernel.schedule_at(time, self.network.hosts[host].restart)

    def crash_window(self, host: HostId, start: float, duration: float) -> None:
        """Crash ``host`` at ``start`` and restart it ``duration`` later."""
        self.crash_at(host, start)
        self.restart_at(host, start + duration)

    # -- message loss ----------------------------------------------------------------

    def isolate_host(self, host: HostId) -> Partition:
        """Cut one host off from everyone else (a one-host partition)."""
        others = [h for h in self.network.hosts if h != host]
        return self.partition([host], others)

    def loss_window(self, rate: float, start: float, duration: float) -> None:
        """Raise the network-wide loss probability to ``rate`` over a window.

        The previous :class:`~repro.sim.network.NetworkParams` (captured at
        the window's start, so earlier schedule entries compose) are
        restored ``duration`` seconds later.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate out of range: {rate}")
        saved: list = []

        def _start() -> None:
            saved.append(self.network.params)
            self.network.params = dataclasses.replace(
                self.network.params, loss_rate=rate
            )

        def _stop() -> None:
            self.network.params = saved.pop()

        self.kernel.schedule_at(start, _start)
        self.kernel.schedule_at(start + duration, _stop)

    # -- clock faults (paper §5) ---------------------------------------------------------

    def step_clock_at(self, host: HostId, time: float, delta: float) -> None:
        """Schedule a one-time clock step on ``host`` at virtual ``time``.

        A negative delta ("advancing too slowly") on a client, or a
        positive one on a server, is one of the §5 failure modes that can
        break consistency; the opposite directions only cost traffic.

        The clock is resolved *through the host at fire time* (as
        :meth:`set_drift_at` does): a restart between scheduling and
        firing swaps the host's clock object, and a step captured early
        would silently mutate the dead clock.
        """
        host_obj = self.network.hosts[host]

        def step() -> None:
            host_obj.clock.offset += delta

        self.kernel.schedule_at(time, step)

    def set_drift_at(self, host: HostId, time: float, drift: float) -> None:
        """Schedule a rate-error change on ``host``'s clock at ``time``.

        The local reading stays continuous across the change (the offset
        is adjusted so only the *rate* jumps) — modeling a crystal going
        bad, not a step.
        """
        host_obj = self.network.hosts[host]

        def change() -> None:
            clock = host_obj.clock
            current = clock.now()
            clock.drift = drift
            clock.offset = current - (1.0 + drift) * self.kernel.now

        self.kernel.schedule_at(time, change)
