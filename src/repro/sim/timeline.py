"""Protocol timeline recording: a text sequence diagram of a simulation.

Attach a :class:`Timeline` to a cluster and every delivered message (and
every commit) is recorded; :meth:`Timeline.render` prints the exchange as
an aligned lane diagram — invaluable when debugging protocol interactions
and when teaching how leases behave:

::

    time (s)      c0                 server              c1
    0.000000      ReadRequest ->
    0.001270                         <- ReadReply(v1,t10)
    1.000000                         <- ApprovalRequest   WriteRequest ->
    ...

The recorder is pure observation: it never alters delivery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.protocol.messages import (
    ApprovalReply,
    ApprovalRequest,
    ExtendReply,
    ExtendRequest,
    InstalledAnnounce,
    ReadReply,
    ReadRequest,
    WriteReply,
    WriteRequest,
)
from repro.sim.driver import Cluster
from repro.types import HostId


@dataclass(frozen=True)
class TimelineEvent:
    """One recorded protocol event."""

    time: float
    src: HostId
    dst: HostId
    summary: str


def _summarize(message) -> str:
    """One compact token per message type."""
    name = type(message).__name__
    if isinstance(message, ReadRequest):
        return f"Read({message.datum.ident})"
    if isinstance(message, ReadReply):
        if message.error:
            return f"ReadErr({message.error})"
        suffix = "" if message.payload is None else "+data"
        return f"ReadOk(v{message.version},t{message.term:g}{suffix})"
    if isinstance(message, ExtendRequest):
        return f"Extend[{len(message.items)}]"
    if isinstance(message, ExtendReply):
        return f"ExtendOk[{len(message.grants)}g/{len(message.denied)}d]"
    if isinstance(message, WriteRequest):
        return f"Write({message.datum.ident},seq{message.write_seq})"
    if isinstance(message, WriteReply):
        return f"WriteErr({message.error})" if message.error else f"WriteOk(v{message.version})"
    if isinstance(message, ApprovalRequest):
        return f"Approve?({message.datum.ident},w{message.write_id})"
    if isinstance(message, ApprovalReply):
        return f"Approve!(w{message.write_id})"
    if isinstance(message, InstalledAnnounce):
        return f"Announce[{len(message.covers)}]"
    return name


class Timeline:
    """Records delivered messages and store commits for one cluster."""

    def __init__(self, cluster: Cluster, capacity: int = 2000):
        self.cluster = cluster
        self.capacity = capacity
        self.events: list[TimelineEvent] = []
        self._wrap(cluster)

    def _wrap(self, cluster: Cluster) -> None:
        previous_deliver = cluster.network.on_deliver

        def recording_deliver(src, dst, payload, kind):
            self._record(cluster.kernel.now, src, dst, _summarize(payload))
            if previous_deliver is not None:
                previous_deliver(src, dst, payload, kind)

        cluster.network.on_deliver = recording_deliver

        original_commit = cluster.store.on_commit

        def recording_commit(datum, version):
            self._record(
                cluster.kernel.now, "server", "server", f"COMMIT({datum.ident},v{version})"
            )
            if original_commit is not None:
                original_commit(datum, version)

        cluster.store.on_commit = recording_commit

    def _record(self, time: float, src: HostId, dst: HostId, summary: str) -> None:
        self.events.append(TimelineEvent(time, src, dst, summary))
        if len(self.events) > self.capacity:
            del self.events[: len(self.events) - self.capacity]

    # -- rendering --------------------------------------------------------------

    def render(self, last: int | None = None, lane_width: int = 26) -> str:
        """Render the recorded events as a lane diagram.

        Args:
            last: only the most recent N events (default: all recorded).
            lane_width: column width per host lane.
        """
        events = self.events if last is None else self.events[-last:]
        if not events:
            return "(no events recorded)"
        hosts = sorted({e.src for e in events} | {e.dst for e in events})
        lane_of = {h: i for i, h in enumerate(hosts)}
        header = "time (s)".ljust(12) + "".join(h.ljust(lane_width) for h in hosts)
        lines = [header, "-" * len(header)]
        for event in events:
            cells = [" " * lane_width] * len(hosts)
            if event.src == event.dst:
                text = f"* {event.summary}"
                cells[lane_of[event.src]] = text[: lane_width - 1].ljust(lane_width)
            else:
                out_text = f"{event.summary} ->"
                in_text = f"-> {event.summary}"
                cells[lane_of[event.src]] = out_text[: lane_width - 1].ljust(lane_width)
                cells[lane_of[event.dst]] = in_text[: lane_width - 1].ljust(lane_width)
            lines.append(f"{event.time:<12.6f}" + "".join(cells))
        return "\n".join(lines)

    def filter(self, host: HostId) -> list[TimelineEvent]:
        """Events involving one host."""
        return [e for e in self.events if host in (e.src, e.dst)]

    def count(self, token: str) -> int:
        """How many recorded summaries contain ``token``."""
        return sum(1 for e in self.events if token in e.summary)
