"""The consistency oracle.

"By consistent, we mean that the behavior is equivalent to there being only
a single (uncached) copy of the data except for the performance benefit of
the cache" (paper §1).  For a versioned register this is linearizability:
every read that returns version ``v`` must overlap an interval of real time
in which ``v`` was the committed version.

The oracle subscribes to the store's commit hooks to build the
authoritative version history on the *kernel* (real) clock, and checks
every completed client read against it.  In a correctly configured system
no violation can occur despite crashes, partitions and message loss (§5);
the clock-failure experiments deliberately provoke violations to reproduce
the paper's failure analysis.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass

from repro.errors import ConsistencyViolationError
from repro.obs.events import ORACLE_VIOLATION
from repro.sim.kernel import Kernel
from repro.storage.store import FileStore
from repro.types import DatumId, HostId, Version


@dataclass(frozen=True)
class Violation:
    """One observed stale read."""

    client: HostId
    datum: DatumId
    returned_version: Version
    invoked_at: float
    completed_at: float
    legal_versions: tuple[Version, ...]

    def __str__(self) -> str:
        return (
            f"stale read by {self.client} of {self.datum}: returned "
            f"v{self.returned_version} over [{self.invoked_at:.6f}, "
            f"{self.completed_at:.6f}] but legal versions were "
            f"{list(self.legal_versions)}"
        )


class ConsistencyOracle:
    """Checks single-copy equivalence of every read."""

    def __init__(self, kernel: Kernel, store: FileStore, strict: bool = True, obs=None):
        self.kernel = kernel
        self.strict = strict
        #: Optional :class:`~repro.obs.bus.TraceBus`; each violation is
        #: emitted as an ``oracle.violation`` event so traces self-certify.
        self.obs = obs
        self.violations: list[Violation] = []
        self.reads_checked = 0
        #: datum -> parallel lists of (commit kernel-times, versions).
        self._times: dict[DatumId, list[float]] = {}
        self._versions: dict[DatumId, list[Version]] = {}
        self.attach_store(store)

    def attach_store(self, store: FileStore, dir_prefix: str = "") -> None:
        """Subscribe to one store's commit hooks and snapshot its state.

        A sharded cluster calls this once per shard so a single oracle's
        history (and :meth:`history_fingerprint`) spans the whole
        namespace.  File datum ids are globally unique (the sharded store
        allocates them from one counter), but each shard's namespace
        mints its own directory ids — ``dir_prefix`` (e.g. ``"s1/"``)
        disambiguates those in the recorded history.
        """
        store.on_commit = self._record_file_commit
        if dir_prefix:
            def on_change(dir_id: str, version: Version) -> None:
                self._record_dir_commit(dir_prefix + dir_id, version)

            store.namespace.on_change = on_change
        else:
            store.namespace.on_change = self._record_dir_commit
        self._snapshot(store, dir_prefix)

    def _snapshot(self, store: FileStore, dir_prefix: str = "") -> None:
        """Record versions that existed before the oracle was attached."""
        for dir_id, record in store.namespace._dirs.items():
            self._append(DatumId.directory(dir_prefix + dir_id), record.version)
        for file_id, record in store._files.items():
            self._append(DatumId.file(file_id), record.version)

    # -- history hooks ----------------------------------------------------------

    def _record_file_commit(self, datum: DatumId, version: Version) -> None:
        self._append(datum, version)

    def _record_dir_commit(self, dir_id: str, version: Version) -> None:
        self._append(DatumId.directory(dir_id), version)

    def _append(self, datum: DatumId, version: Version) -> None:
        self._times.setdefault(datum, []).append(self.kernel.now)
        self._versions.setdefault(datum, []).append(version)

    # -- checking -------------------------------------------------------------------

    def legal_versions(self, datum: DatumId, start: float, end: float) -> tuple[Version, ...]:
        """Versions current at some instant in ``[start, end]``.

        Version ``v_i`` (committed at ``t_i``, superseded at ``t_{i+1}``) is
        legal iff ``t_i <= end`` and (``v_i`` is last or ``t_{i+1} > start``).
        """
        times = self._times.get(datum, [])
        versions = self._versions.get(datum, [])
        if not times:
            return ()
        first = max(0, bisect_right(times, start) - 1)
        last = bisect_right(times, end)
        return tuple(versions[first:last])

    def check_read(
        self,
        client: HostId,
        datum: DatumId,
        returned_version: Version,
        invoked_at: float,
        completed_at: float,
    ) -> None:
        """Validate one completed read.

        Raises:
            ConsistencyViolationError: in strict mode, when the returned
                version was never current during the read's interval.
        """
        self.reads_checked += 1
        legal = self.legal_versions(datum, invoked_at, completed_at)
        if returned_version in legal:
            return
        violation = Violation(
            client=client,
            datum=datum,
            returned_version=returned_version,
            invoked_at=invoked_at,
            completed_at=completed_at,
            legal_versions=legal,
        )
        self.violations.append(violation)
        if self.obs is not None and self.obs.active:
            self.obs.emit(
                ORACLE_VIOLATION, self.kernel.now, client,
                datum=str(datum), client=client, version=returned_version,
            )
        if self.strict:
            raise ConsistencyViolationError(str(violation))

    @property
    def clean(self) -> bool:
        """True when no stale read has been observed."""
        return not self.violations

    # -- invariant hooks (scenario exploration) ----------------------------------

    def history(self, datum: DatumId) -> tuple[tuple[float, Version], ...]:
        """The authoritative ``(commit_time, version)`` history of a datum."""
        times = self._times.get(datum, [])
        versions = self._versions.get(datum, [])
        return tuple(zip(times, versions))

    def history_fingerprint(self) -> str:
        """A SHA-256 digest of the full oracle history.

        Covers every datum's commit timeline, the number of reads checked
        and every recorded violation.  Two runs of the same scenario are
        "identical" for replay purposes exactly when their fingerprints
        match — this is the equality the exploration harness uses to prove
        serialize → load → replay faithfulness.
        """
        payload = {
            "history": {
                str(datum): list(self.history(datum))
                for datum in sorted(self._times, key=str)
            },
            "reads_checked": self.reads_checked,
            "violations": [str(v) for v in self.violations],
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()
