"""Simulated hosts.

A host owns a local clock, a serialized CPU (one ``m_proc`` per message, in
arrival order — this is what makes the paper's multicast-approval time
``2*m_prop + (n+3)*m_proc`` come out of the simulation exactly), and
crash/restart state.  Crashing a host loses its volatile state: the network
drops anything addressed to it, and listeners (protocol drivers) are told to
reset their in-memory structures.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.clock.sim import SimClock
from repro.errors import HostDownError
from repro.sim.kernel import Kernel
from repro.types import HostId

#: Signature of a message handler: ``handler(payload, src)``.
MessageHandler = Callable[[Any, HostId], None]


class Host:
    """One machine in the simulated distributed system."""

    def __init__(
        self,
        name: HostId,
        kernel: Kernel,
        clock_offset: float = 0.0,
        clock_drift: float = 0.0,
    ):
        self.name = name
        self.kernel = kernel
        self.clock = SimClock(kernel, offset=clock_offset, drift=clock_drift)
        self.up = True
        self._cpu_free_at = 0.0
        self._handler: MessageHandler | None = None
        self._crash_listeners: list[Callable[[], None]] = []
        self._restart_listeners: list[Callable[[], None]] = []

    # -- message handling ---------------------------------------------------

    def set_handler(self, handler: MessageHandler) -> None:
        """Install the function invoked for each delivered message."""
        self._handler = handler

    def deliver(self, payload: Any, src: HostId) -> None:
        """Called by the network once receive-side processing completes."""
        if not self.up:
            return  # message silently lost at a crashed host
        if self._handler is None:
            raise HostDownError(f"host {self.name!r} has no message handler")
        self._handler(payload, src)

    # -- CPU occupancy -------------------------------------------------------

    def occupy_cpu(self, duration: float) -> float:
        """Reserve the CPU for ``duration`` seconds; returns completion time.

        Requests are serialized: if the CPU is busy, the reservation starts
        when the previous one finishes.  Used by the network for send- and
        receive-side message processing.
        """
        free = self._cpu_free_at
        now = self.kernel.now  # bypass the property on the hottest call site
        if free < now:
            free = now
        self._cpu_free_at = free = free + duration
        return free

    # -- failure model --------------------------------------------------------

    def on_crash(self, listener: Callable[[], None]) -> None:
        """Register a callback run when the host crashes."""
        self._crash_listeners.append(listener)

    def on_restart(self, listener: Callable[[], None]) -> None:
        """Register a callback run when the host restarts."""
        self._restart_listeners.append(listener)

    def crash(self) -> None:
        """Take the host down, losing volatile state.

        In-flight messages to this host are dropped on delivery; handlers
        are notified so they can discard in-memory protocol state (a real
        crash forgets leases held, pending operations, cached data).
        """
        if not self.up:
            return
        self.up = False
        self._cpu_free_at = self.kernel.now
        for listener in self._crash_listeners:
            listener()

    def restart(self) -> None:
        """Bring a crashed host back up (volatile state already lost).

        The clock *object* is re-created, as a reboot re-initializes the
        time-of-day driver; the reading is continuous (the hardware clock
        kept its offset and its crystal kept its drift), but anything that
        captured the old object is now mutating a dead clock — fault
        injectors must resolve ``host.clock`` at fire time.
        """
        if self.up:
            return
        self.up = True
        self._cpu_free_at = self.kernel.now
        self.clock = SimClock(
            self.kernel, offset=self.clock.offset, drift=self.clock.drift
        )
        for listener in self._restart_listeners:
            listener()

    def __repr__(self) -> str:
        state = "up" if self.up else "down"
        return f"Host({self.name!r}, {state}, t={self.kernel.now:.3f})"
