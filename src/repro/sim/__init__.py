"""Deterministic discrete-event simulation substrate.

This package provides the testbed on which the lease protocol is evaluated,
standing in for the paper's MicroVAX II / Ethernet / V-IPC environment:

* :mod:`repro.sim.kernel` — virtual time, an event heap, and a seeded RNG;
  runs are bit-for-bit reproducible for a given seed.
* :mod:`repro.sim.host` — simulated hosts with a serialized CPU (so message
  processing costs ``m_proc`` each, matching the paper's model) and
  crash/restart state.
* :mod:`repro.sim.network` — unicast and multicast message delivery with
  propagation delay ``m_prop``, per-message processing ``m_proc``, loss and
  partitions; per-host, per-kind message accounting used to measure server
  consistency load.
* :mod:`repro.sim.faults` — convenience fault injectors (partitions, crash
  schedules, message-loss windows).
* :mod:`repro.sim.driver` — binds the sans-io protocol engines to this
  substrate.
* :mod:`repro.sim.oracle` — asserts single-copy equivalence on every read.
"""

from repro.sim.kernel import EventHandle, Kernel
from repro.sim.host import Host
from repro.sim.network import Network, NetworkParams

__all__ = ["Kernel", "EventHandle", "Host", "Network", "NetworkParams"]
