"""Latency and load statistics for experiments.

Mean delay hides the paper's most interesting behaviour: under leases the
read-latency distribution is sharply bimodal (0 for cache hits, one round
trip for extensions, seconds for reads deferred behind blocked writes).
:class:`LatencySummary` captures the distribution; :func:`summarize_ops`
builds one from driver results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.sim.driver import OpResult


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of operation latencies (seconds).

    Attributes:
        count: operations summarized.
        mean: arithmetic mean.
        p50/p90/p99: percentiles (nearest-rank).
        max: worst case.
        zero_fraction: share of operations served with zero latency
            (pure cache hits — the lease dividend).
    """

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float
    zero_fraction: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={1e3 * self.mean:.3f}ms "
            f"p50={1e3 * self.p50:.3f}ms p90={1e3 * self.p90:.3f}ms "
            f"p99={1e3 * self.p99:.3f}ms max={1e3 * self.max:.3f}ms "
            f"hits={self.zero_fraction:.0%}"
        )


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted list.

    Args:
        sorted_values: non-empty ascending values.
        fraction: in [0, 1].
    """
    if not sorted_values:
        raise ValueError("no values")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction out of range: {fraction}")
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


def summarize_latencies(latencies: Iterable[float]) -> LatencySummary:
    """Summarize a collection of latencies."""
    values = sorted(latencies)
    if not values:
        raise ValueError("no latencies to summarize")
    return LatencySummary(
        count=len(values),
        mean=sum(values) / len(values),
        p50=percentile(values, 0.50),
        p90=percentile(values, 0.90),
        p99=percentile(values, 0.99),
        max=values[-1],
        zero_fraction=sum(1 for v in values if v == 0.0) / len(values),
    )


def summarize_ops(results: Iterable[OpResult], ok_only: bool = True) -> LatencySummary:
    """Summarize completed operations from a simulation driver."""
    return summarize_latencies(
        r.latency for r in results if r.ok or not ok_only
    )
