"""Binds the sans-io protocol engines to the simulated network.

:class:`SimServer` and :class:`SimClient` execute engine effects against
the :class:`~repro.sim.network.Network`, convert engine timer requests into
kernel events (compensating for clock drift), model crash/restart state
loss, and surface completed operations to workloads and tests.

:func:`build_cluster` assembles a ready-to-run world: kernel, network,
server, clients, oracle, fault injector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.lease.installed import InstalledFileManager
from repro.lease.policy import FixedTermPolicy, TermPolicy
from repro.obs.events import TIMER_FIRE
from repro.protocol.client import ClientConfig, ClientEngine
from repro.protocol.effects import Broadcast, CancelTimer, Complete, Effect, Send, SetTimer
from repro.protocol.messages import Message
from repro.protocol.server import ServerConfig, ServerEngine
from repro.sim.faults import FaultInjector
from repro.sim.host import Host
from repro.sim.kernel import EventHandle, Kernel
from repro.sim.network import Network, NetworkParams
from repro.sim.oracle import ConsistencyOracle
from repro.storage.store import FileStore
from repro.types import DatumId, FileClass, HostId


class _TimerBank:
    """Named engine timers mapped onto kernel events.

    Engine delays are in the host's *local* seconds; with a drifting clock
    the kernel delay is scaled by ``1/(1 + drift)`` so the timer fires when
    the local clock has advanced by the requested amount.
    """

    def __init__(self, host: Host, on_fire: Callable[[str], None], obs=None):
        self._host = host
        self._on_fire = on_fire
        self._handles: dict[str, EventHandle] = {}
        self._obs = obs

    def set(self, key: str, local_delay: float) -> None:
        self.cancel(key)
        kernel_delay = local_delay / (1.0 + self._host.clock.drift)
        self._handles[key] = self._host.kernel.schedule(
            max(0.0, kernel_delay), self._fire, key
        )

    def cancel(self, key: str) -> None:
        handle = self._handles.pop(key, None)
        if handle is not None:
            handle.cancel()

    def cancel_all(self) -> None:
        for key in list(self._handles):
            self.cancel(key)

    def _fire(self, key: str) -> None:
        self._handles.pop(key, None)
        if self._host.up:
            obs = self._obs
            if obs is not None and obs.active:
                obs.emit(TIMER_FIRE, self._host.clock.now(), self._host.name, key=key)
            self._on_fire(key)


class SimServer:
    """The file server bound to a simulated host."""

    def __init__(
        self,
        host: Host,
        network: Network,
        store: FileStore,
        policy: TermPolicy,
        config: ServerConfig | None = None,
        installed: InstalledFileManager | None = None,
        use_multicast: bool = True,
        engine_factory: Callable[..., ServerEngine] | None = None,
        obs=None,
    ):
        self.host = host
        self.network = network
        self.store = store
        self.policy = policy
        self.config = config or ServerConfig()
        self.use_multicast = use_multicast
        self.obs = obs
        #: Builds the protocol engine; baseline protocols (§6) substitute
        #: their own engines with the same duck interface.
        self._engine_factory = engine_factory or ServerEngine
        self._installed_template = installed
        #: Models the small persistent record of the largest term granted,
        #: which bounds the post-crash write delay (paper §2).
        self._persisted_max_term = 0.0
        self.engine: ServerEngine | None = None
        self._timers = _TimerBank(host, self._on_timer, obs=obs)
        host.set_handler(self._on_message)
        host.on_crash(self._on_crash)
        host.on_restart(self._on_restart)
        self._boot(recovery_delay=0.0)

    # -- lifecycle -------------------------------------------------------------

    def _boot(self, recovery_delay: float) -> None:
        config = ServerConfig(
            epsilon=self.config.epsilon,
            announce_period=self.config.announce_period,
            announce_grace=self.config.announce_grace,
            recovery_delay=recovery_delay,
            sweep_period=self.config.sweep_period,
        )
        installed = self._rebuild_installed()
        self.engine = self._engine_factory(
            self.host.name,
            self.store,
            self.policy,
            config=config,
            installed=installed,
            now=self.host.clock.now(),
            obs=self.obs,
        )
        self._run_effects(self.engine.startup_effects(self.host.clock.now()))

    def _rebuild_installed(self) -> InstalledFileManager | None:
        """Re-derive cover membership from persistent file metadata.

        Which files are installed (and their directory grouping) is durable
        configuration; the announcement bookkeeping is volatile and starts
        clean — safe, because recovery delays writes past any pre-crash
        lease.
        """
        template = self._installed_template
        if template is None:
            return None
        manager = InstalledFileManager(
            announce_period=template.announce_period, term=template.term
        )
        for cover in template.covers():
            for datum in template.members(cover):
                manager.register(cover, datum)
        return manager

    def _on_crash(self) -> None:
        if self.engine is not None:
            # clear() hands back the pre-crash bound — the §2 crash rule's
            # one durable datum — so dropping the table cannot lose it.
            self._persisted_max_term = max(
                self._persisted_max_term, self.engine.table.clear()
            )
            if self.engine.installed is not None:
                self._persisted_max_term = max(
                    self._persisted_max_term, self.engine.installed.term
                )
        self.engine = None
        self._timers.cancel_all()

    def _on_restart(self) -> None:
        self._boot(recovery_delay=self._persisted_max_term)

    # -- plumbing ----------------------------------------------------------------

    def _on_message(self, payload: Message, src: HostId) -> None:
        self._run_effects(
            self.engine.handle_message(payload, src, self.host.clock.now())
        )

    def _on_timer(self, key: str) -> None:
        self._run_effects(self.engine.handle_timer(key, self.host.clock.now()))

    def _run_effects(self, effects: list[Effect]) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                self.network.unicast(
                    self.host.name, effect.dst, effect.message, kind=effect.message.kind
                )
            elif isinstance(effect, Broadcast):
                if self.use_multicast:
                    self.network.multisend(
                        self.host.name,
                        effect.dsts,
                        effect.message,
                        kind=effect.message.kind,
                    )
                else:
                    for dst in effect.dsts:
                        self.network.unicast(
                            self.host.name, dst, effect.message, kind=effect.message.kind
                        )
            elif isinstance(effect, SetTimer):
                self._timers.set(effect.key, effect.delay)
            elif isinstance(effect, CancelTimer):
                self._timers.cancel(effect.key)
            else:
                raise TypeError(f"server cannot execute effect {effect!r}")


@dataclass
class OpResult:
    """Completion record of one client operation."""

    op_id: int
    ok: bool
    value: object
    error: str | None
    submitted_at: float
    completed_at: float

    @property
    def latency(self) -> float:
        """Seconds from submission to completion, in simulated time."""
        return self.completed_at - self.submitted_at


class SimClient:
    """A client cache bound to a simulated host."""

    def __init__(
        self,
        host: Host,
        network: Network,
        server: HostId,
        config: ClientConfig | None = None,
        oracle: ConsistencyOracle | None = None,
        engine_cls: type[ClientEngine] = ClientEngine,
        obs=None,
    ):
        self.host = host
        self.network = network
        self.server = server
        self.config = config or ClientConfig()
        self.oracle = oracle
        self.obs = obs
        self._engine_cls = engine_cls
        self.engine: ClientEngine | None = None
        self.results: dict[int, OpResult] = {}
        self._submit_times: dict[int, float] = {}
        self._op_datum: dict[int, DatumId] = {}
        self._callbacks: dict[int, Callable[[OpResult], None]] = {}
        self._timers = _TimerBank(host, self._on_timer, obs=obs)
        self._incarnation = 0
        host.set_handler(self._on_message)
        host.on_crash(self._on_crash)
        host.on_restart(self._on_restart)
        self._boot()

    # -- lifecycle ---------------------------------------------------------------

    def _boot(self) -> None:
        # Each incarnation gets a disjoint id space so pre-crash requests,
        # operations and write sequence numbers can never collide with
        # post-restart ones (see ClientEngine's id_base docstring).
        self._incarnation += 1
        self.engine = self._engine_cls(
            self.host.name,
            self.server,
            config=self.config,
            id_base=self._incarnation * 1_000_000,
            obs=self.obs,
        )
        self._run_effects(self.engine.startup_effects(self.host.clock.now()))

    def _on_crash(self) -> None:
        """A crash loses every piece of volatile state: cache, leases,
        pending operations (their results will never arrive)."""
        self.engine = None
        self._timers.cancel_all()
        self._submit_times.clear()
        self._op_datum.clear()
        self._callbacks.clear()

    def _on_restart(self) -> None:
        self._boot()

    # -- application API ----------------------------------------------------------

    def read(
        self, datum: DatumId, callback: Callable[[OpResult], None] | None = None
    ) -> int:
        """Submit a read; returns the op id (result lands in ``results``)."""
        op_id, effects = self.engine.read(datum, self.host.clock.now())
        self._register(op_id, datum, callback)
        self._run_effects(effects)
        return op_id

    def write(
        self,
        datum: DatumId,
        content: bytes,
        callback: Callable[[OpResult], None] | None = None,
        cas: int | None = None,
    ) -> int:
        """Submit a write-through; returns the op id."""
        op_id, effects = self.engine.write(
            datum, content, self.host.clock.now(), cas=cas
        )
        self._register(op_id, None, callback)
        self._run_effects(effects)
        return op_id

    def relinquish(self, datum: DatumId) -> None:
        """Voluntarily give up a lease (client option, §4)."""
        self._run_effects(self.engine.relinquish(datum))

    def namespace_op(
        self,
        op_name: str,
        args: tuple,
        callback: Callable[[OpResult], None] | None = None,
    ) -> int:
        """Submit a namespace mutation; returns the op id."""
        op_id, effects = self.engine.namespace_op(op_name, args, self.host.clock.now())
        self._register(op_id, None, callback)
        self._run_effects(effects)
        return op_id

    def _register(
        self,
        op_id: int,
        datum: DatumId | None,
        callback: Callable[[OpResult], None] | None,
    ) -> None:
        self._submit_times[op_id] = self.host.kernel.now
        if datum is not None:
            self._op_datum[op_id] = datum
        if callback is not None:
            self._callbacks[op_id] = callback
        # The engine may have completed the op synchronously (cache hit);
        # _run_effects is invoked after registration by the caller, but a
        # synchronous Complete was already part of the returned effects.

    # -- plumbing ---------------------------------------------------------------------

    def _on_message(self, payload: Message, src: HostId) -> None:
        self._run_effects(
            self.engine.handle_message(payload, src, self.host.clock.now())
        )

    def _on_timer(self, key: str) -> None:
        self._run_effects(self.engine.handle_timer(key, self.host.clock.now()))

    def _run_effects(self, effects: list[Effect]) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                self.network.unicast(
                    self.host.name, effect.dst, effect.message, kind=effect.message.kind
                )
            elif isinstance(effect, SetTimer):
                self._timers.set(effect.key, effect.delay)
            elif isinstance(effect, CancelTimer):
                self._timers.cancel(effect.key)
            elif isinstance(effect, Complete):
                self._on_complete(effect)
            else:
                raise TypeError(f"client cannot execute effect {effect!r}")

    def _on_complete(self, effect: Complete) -> None:
        now = self.host.kernel.now
        submitted = self._submit_times.pop(effect.op_id, now)
        result = OpResult(
            op_id=effect.op_id,
            ok=effect.ok,
            value=effect.value,
            error=effect.error,
            submitted_at=submitted,
            completed_at=now,
        )
        self.results[effect.op_id] = result
        datum = self._op_datum.pop(effect.op_id, None)
        if effect.ok and datum is not None and self.oracle is not None:
            version, _payload = effect.value
            self.oracle.check_read(
                self.host.name, datum, version, submitted, now
            )
        callback = self._callbacks.pop(effect.op_id, None)
        if callback is not None:
            callback(result)


@dataclass
class Cluster:
    """A fully wired simulated world."""

    kernel: Kernel
    network: Network
    server: SimServer
    clients: list[SimClient]
    store: FileStore
    oracle: ConsistencyOracle
    #: The cluster-wide trace bus (None when tracing is off).
    obs: object | None = None
    faults: FaultInjector = field(init=False)

    def __post_init__(self) -> None:
        self.faults = FaultInjector(self.network)

    def client(self, index: int) -> SimClient:
        """The index-th client (``c<index>``)."""
        return self.clients[index]

    def live_clients(self) -> list[SimClient]:
        """Clients whose hosts are currently up."""
        return [c for c in self.clients if c.host.up]

    def schedule_op(
        self, at: float, client_index: int, submit: Callable[[SimClient], object]
    ) -> None:
        """Schedule ``submit(client)`` at virtual time ``at``.

        The submission is silently skipped if the client's host is down at
        fire time — a user at a crashed workstation submits nothing.  This
        is the scenario-driven workload idiom extracted from the random
        stress test; :mod:`repro.check.runner` schedules every scenario op
        through it.
        """
        client = self.clients[client_index]

        def fire() -> None:
            if client.host.up:
                submit(client)

        self.kernel.schedule_at(at, fire)

    def run(self, until: float | None = None) -> None:
        """Advance the simulation."""
        self.kernel.run(until=until)

    def run_until_complete(self, client: SimClient, op_id: int, limit: float = 300.0) -> OpResult:
        """Step the kernel until the given operation completes.

        Raises:
            TimeoutError: the op did not finish within ``limit`` virtual
                seconds (e.g. blocked behind an infinite lease).
        """
        deadline = self.kernel.now + limit
        while op_id not in client.results:
            if self.kernel.now > deadline or not self.kernel.step():
                if op_id in client.results:
                    break
                raise TimeoutError(
                    f"op {op_id} on {client.host.name} incomplete at t={self.kernel.now:.3f}"
                )
        return client.results[op_id]


def build_cluster(
    n_clients: int = 2,
    policy: TermPolicy | None = None,
    network_params: NetworkParams | None = None,
    client_config: ClientConfig | None = None,
    server_config: ServerConfig | None = None,
    installed: InstalledFileManager | None = None,
    use_multicast: bool = True,
    seed: int = 0,
    strict_oracle: bool = True,
    setup_store: Callable[[FileStore], None] | None = None,
    client_clock_params: Callable[[int], tuple[float, float]] | None = None,
    server_clock_params: tuple[float, float] = (0.0, 0.0),
    server_engine_factory: Callable[..., ServerEngine] | None = None,
    obs=None,
) -> Cluster:
    """Assemble a simulated cluster.

    Args:
        n_clients: number of client hosts (named ``c0 .. c{n-1}``).
        policy: server term policy (default: fixed 10 s — the paper's pick).
        network_params: message timing (default: the V parameter set).
        installed: optional installed-files manager (register datums on it
            after the store is set up, or pass a preconfigured one).
        use_multicast: False fans approvals/announcements out as unicasts
            (the paper's footnote-6 ablation).
        strict_oracle: raise on the first stale read (set False in clock-
            failure experiments that *expect* violations).
        setup_store: callback to populate the store before clients start.
        client_clock_params: maps client index to (offset, drift).
        server_clock_params: (offset, drift) of the server clock.
        obs: optional :class:`~repro.obs.bus.TraceBus` threaded through
            every layer (kernel, network, engines, timers, oracle) so one
            stream observes the whole cluster.
    """
    kernel = Kernel(seed=seed, obs=obs)
    network = Network(kernel, network_params or NetworkParams(), obs=obs)
    store = FileStore()
    if setup_store is not None:
        setup_store(store)
    oracle = ConsistencyOracle(kernel, store, strict=strict_oracle, obs=obs)

    offset, drift = server_clock_params
    server_host = Host("server", kernel, clock_offset=offset, clock_drift=drift)
    network.attach(server_host)
    server = SimServer(
        server_host,
        network,
        store,
        policy or FixedTermPolicy(10.0),
        config=server_config,
        installed=installed,
        use_multicast=use_multicast,
        engine_factory=server_engine_factory,
        obs=obs,
    )

    clients = []
    for i in range(n_clients):
        offset, drift = (0.0, 0.0)
        if client_clock_params is not None:
            offset, drift = client_clock_params(i)
        host = Host(f"c{i}", kernel, clock_offset=offset, clock_drift=drift)
        network.attach(host)
        clients.append(
            SimClient(
                host, network, "server", config=client_config, oracle=oracle, obs=obs
            )
        )
    return Cluster(
        kernel=kernel,
        network=network,
        server=server,
        clients=clients,
        store=store,
        oracle=oracle,
        obs=obs,
    )


def install_tree(
    store: FileStore,
    installed: InstalledFileManager,
    directory: str,
    files: dict[str, bytes],
) -> dict[str, DatumId]:
    """Create ``directory`` full of installed files under one cover lease.

    Intermediate directories are created as needed.

    Returns a mapping from path to file datum.
    """
    parts = [p for p in directory.split("/") if p]
    for depth in range(1, len(parts) + 1):
        prefix = "/" + "/".join(parts[:depth])
        try:
            store.namespace.resolve_dir(prefix)
        except Exception:
            store.namespace.mkdir(prefix)
    cover = f"cover:{directory}"
    datums = {}
    for name, content in files.items():
        path = f"{directory}/{name}"
        record = store.create_file(path, content, file_class=FileClass.INSTALLED)
        datum = DatumId.file(record.file_id)
        installed.register(cover, datum)
        datums[path] = datum
    return datums
