"""Path-based file API for the discrete-event simulator.

The mirror of :mod:`repro.runtime.pathapi` for simulated clusters: resolve
paths by reading (leased, cached) directory datums, then operate on the
file datum.  Each call steps the kernel until its operations complete, so
the API is synchronous from the caller's perspective — convenient for
examples and scenario tests.
"""

from __future__ import annotations

from repro.errors import NoSuchFileError, NotADirectoryError_, ReproError
from repro.sim.driver import Cluster, SimClient
from repro.storage.namespace import Namespace, split_path
from repro.types import DatumId


class SimPathClient:
    """A path-first facade over one simulated client.

    All methods advance simulated time as needed (bounded by ``limit``
    seconds per operation) and raise on failure.
    """

    def __init__(self, cluster: Cluster, client: SimClient, limit: float = 120.0):
        self.cluster = cluster
        self.client = client
        self.limit = limit

    # -- plumbing ---------------------------------------------------------------

    def _complete(self, op_id: int):
        result = self.cluster.run_until_complete(self.client, op_id, limit=self.limit)
        if not result.ok:
            raise ReproError(result.error or "operation failed")
        return result

    def _read_datum(self, datum: DatumId):
        return self._complete(self.client.read(datum)).value

    # -- resolution ------------------------------------------------------------------

    def resolve(self, path: str) -> DatumId:
        """Resolve a path to its datum, walking leased directory datums.

        Raises:
            NoSuchFileError: a component is missing.
            NotADirectoryError_: a non-final component is a plain file.
        """
        parts = split_path(path)
        dir_id = Namespace.ROOT_ID
        for depth, name in enumerate(parts):
            _version, entries = self._read_datum(DatumId.directory(dir_id))
            match = next((e for e in entries if e[0] == name), None)
            if match is None:
                raise NoSuchFileError(path)
            _name, target, is_dir, _mode = match
            if depth == len(parts) - 1:
                return DatumId.directory(target) if is_dir else DatumId.file(target)
            if not is_dir:
                raise NotADirectoryError_(f"{path!r}: {name!r} is a file")
            dir_id = target
        return DatumId.directory(dir_id)

    # -- operations --------------------------------------------------------------------

    def read_file(self, path: str) -> tuple[int, bytes]:
        """Open-and-read by path; returns (version, contents)."""
        return self._read_datum(self.resolve(path))

    def write_file(self, path: str, content: bytes) -> int:
        """Write-through by path; returns the committed version."""
        datum = self.resolve(path)
        return self._complete(self.client.write(datum, content)).value

    def list_dir(self, path: str) -> list[tuple]:
        """Directory entries as (name, target, is_dir, mode) tuples."""
        _version, entries = self._read_datum(self.resolve(path))
        return list(entries)

    def create_file(self, path: str, content: bytes = b"") -> str:
        """Create a file; returns its file id."""
        return self._complete(
            self.client.namespace_op("bind", (path, content, "normal"))
        ).value

    def mkdir(self, path: str) -> str:
        """Create a directory; returns its dir id."""
        return self._complete(self.client.namespace_op("mkdir", (path,))).value

    def unlink(self, path: str) -> None:
        """Remove a file or empty directory."""
        self._complete(self.client.namespace_op("unbind", (path,)))

    def rename(self, old: str, new: str) -> None:
        """Rename/move a binding."""
        self._complete(self.client.namespace_op("rename", (old, new)))

    def write_temp(self, path: str, content: bytes) -> None:
        """Write a client-local temporary file (never reaches the server)."""
        self.client.engine.write_temp(path, content)
