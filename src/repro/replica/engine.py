"""The replica protocol engine: PaxosLease election around a deposed-able
:class:`~repro.protocol.server.ServerEngine`.

Each replica is one of these state machines (sans-io, like every engine in
this repo).  Three states:

* **follower** — no master lease held.  Paxos traffic is served by the
  acceptor; client requests are redirected with
  :class:`~repro.protocol.messages.NotMaster` carrying the believed
  master.  A periodic election tick starts a proposer round when no
  unexpired lease is known locally.
* **waiting** — won the master lease, but may not serve yet: the handoff
  invariant (DESIGN.md §17) requires the prior master's residual
  mastership belief *and* every file lease it may have granted to have
  expired on **our** clock, drift-compensated
  (:func:`repro.clock.sync.safe_waitout`).  Client requests received in
  this window are queued (bounded) and replayed at serve time, so a
  failover costs clients one wait, not a timeout storm.
* **master** — a fresh inner :class:`ServerEngine` serves the ordinary
  lease protocol over the shared store.  The master lease is renewed by
  fresh Paxos rounds well before expiry; its validity is re-checked at
  **every** entry point, and on expiry the inner engine is dropped on the
  floor (deposed) before the message or timer is processed — a
  partitioned ex-master can never commit a write after its lease lapsed.

Clock-fault discipline (the §5 sweep, PR 2's lesson): every absolute
deadline here — the handoff ``serve_at``, the master-lease expiry check —
re-arms for the remainder when its timer fires early after a backward
clock step, exactly like the inner engine's recovery/write deadlines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.clock.sync import safe_local_expiry, safe_waitout
from repro.errors import ReproError
from repro.lease.policy import TermPolicy
from repro.obs.bus import NULL_BUS
from repro.obs.events import (
    REPLICA_DEPOSED,
    REPLICA_ELECTED,
    REPLICA_REDIRECT,
    REPLICA_SERVE,
)
from repro.protocol.effects import Effect, Send, SetTimer
from repro.protocol.messages import (
    Message,
    NotMaster,
    PrepareReply,
    PrepareRequest,
    ProposeReply,
    ProposeRequest,
)
from repro.protocol.server import ServerConfig, ServerEngine
from repro.replica.paxos import Acceptor, Proposer
from repro.replica.paxos import BACKOFF, ELECTED, PROPOSE
from repro.storage.store import FileStore
from repro.types import HostId


@dataclass(frozen=True)
class ReplicaConfig:
    """Replica tuning knobs.

    Attributes:
        hosts: every replica in the group (stable order; defines indices).
        index: this replica's position in ``hosts``.
        master_term: duration of the PaxosLease master lease.
        max_file_term: the longest file-lease term the policy can grant —
            the handoff wait must out-wait it.
        epsilon: clock-skew allowance (shared with clients/servers).
        drift_bound: bound on this clock's rate error.
        tick: election/renewal poll period.
        round_timeout: how long a prepare/propose round may run before it
            is aborted and retried.
        queue_limit: most client messages held during the handoff wait;
            beyond it the oldest are dropped (clients retransmit).
        join_delay: how long after boot the node abstains from Paxos
            entirely — the diskless restart rule: a restarted acceptor
            must not answer until every promise or accepted lease it
            forgot has expired everywhere.  0 on first boot.
        server: config for the inner :class:`ServerEngine` built at each
            serve; its ``recovery_delay`` is ignored (the handoff wait
            subsumes crash recovery).
    """

    hosts: tuple[HostId, ...]
    index: int
    master_term: float = 2.0
    max_file_term: float = 10.0
    epsilon: float = 0.1
    drift_bound: float = 0.0
    tick: float = 0.25
    round_timeout: float = 0.5
    queue_limit: int = 256
    join_delay: float = 0.0
    server: ServerConfig = field(default_factory=ServerConfig)


def restart_join_delay(config: ReplicaConfig) -> float:
    """The abstention window a restarted replica must honor.

    Covers everything a diskless acceptor forgets: a promise inside an
    in-flight round (bounded by the round timeout), an accepted master
    lease (expires within one drift-stretched ``master_term``), and —
    because the acceptor's sticky ``ever_accepted`` history underwrites
    the cold-start fast path — the file-lease tail of the mastership that
    accepted lease backed (one more ``max_file_term``).  After this wait
    the amnesia is moot: nothing the node forgot can still bind anyone.
    """
    return (
        safe_waitout(
            config.master_term + config.max_file_term,
            config.epsilon,
            config.drift_bound,
        )
        + config.round_timeout
    )


FOLLOWER = "follower"
WAITING = "waiting"
MASTER = "master"

#: Paxos message types, routed to acceptor/proposer in any state.
_PAXOS_TYPES = (PrepareRequest, PrepareReply, ProposeRequest, ProposeReply)


class ReplicaEngine:
    """One replica of the replicated lease authority."""

    def __init__(
        self,
        name: HostId,
        store: FileStore,
        policy: TermPolicy,
        config: ReplicaConfig,
        now: float = 0.0,
        obs=None,
    ):
        if config.hosts[config.index] != name:
            raise ReproError(
                f"replica {name!r} is not hosts[{config.index}]={config.hosts[config.index]!r}"
            )
        self.name = name
        self.store = store
        self.policy = policy
        self.config = config
        self.obs = obs or NULL_BUS
        self.state = FOLLOWER
        self.acceptor = Acceptor()
        self.proposer = Proposer(
            name,
            config.index,
            len(config.hosts),
            config.master_term,
            epsilon=config.epsilon,
            drift_bound=config.drift_bound,
        )
        #: The inner lease server; exists only while ``state == MASTER``.
        self.inner: ServerEngine | None = None
        #: Mastership epoch — bumped at every serve; namespaces inner
        #: timer keys so a deposed epoch's timers fire as no-ops.
        self.epoch = 0
        #: Who we believe holds the master lease (for redirects); "" when
        #: unknown.  Tracked from our acceptor's accepted state and from
        #: our own elections.
        self._believed_master: HostId = ""
        #: Local-clock instant the acceptor's belief goes stale.
        self._belief_expiry = 0.0
        #: Client messages held during the handoff wait.
        self._queue: deque[tuple[Message, HostId]] = deque()
        self._queue_dropped = 0
        #: Local time before which we may not serve (waiting state).
        self._serve_at = 0.0
        #: Local time before which we take no part in Paxos (restart rule).
        self._join_at = now + config.join_delay
        #: Earliest local time the next election attempt may start.
        self._next_attempt_at = 0.0

    # -- lifecycle -------------------------------------------------------------

    def startup_effects(self, now: float) -> list[Effect]:
        """Arm the election tick (delayed past the restart abstention)."""
        delay = max(self._stagger(), self._join_at - now)
        return [SetTimer("paxos:tick", delay)]

    def _stagger(self) -> float:
        # Deterministic per-node offset so fresh replicas don't start
        # dueling rounds in the same instant.
        return 0.05 + self.config.index * self.config.tick / len(self.config.hosts)

    # -- entry points ----------------------------------------------------------

    def handle_message(self, msg: Message, src: HostId, now: float) -> list[Effect]:
        """Process one inbound message; returns the effects to execute."""
        effects = self._check_mastership(now)
        if isinstance(msg, _PAXOS_TYPES):
            effects.extend(self._handle_paxos(msg, src, now))
            return effects
        effects.extend(self._handle_client(msg, src, now))
        return effects

    def handle_timer(self, key: str, now: float) -> list[Effect]:
        """Process a timer firing; returns the effects to execute."""
        effects = self._check_mastership(now)
        if key == "paxos:tick":
            effects.extend(self._on_tick(now))
            return effects
        if key == "paxos:round":
            effects.extend(self._on_round_timeout(now))
            return effects
        if key == "handoff":
            effects.extend(self._on_handoff(now))
            return effects
        if key == "master:check":
            # Expiry (or re-arm) already happened in _check_mastership.
            effects.extend(self._rearm_master_check(now))
            return effects
        if key.startswith("inner:"):
            effects.extend(self._on_inner_timer(key, now))
            return effects
        raise ReproError(f"replica got unexpected timer {key!r}")

    # -- mastership validity ---------------------------------------------------

    def _check_mastership(self, now: float) -> list[Effect]:
        """Depose ourselves the moment our master lease is no longer
        provably valid — checked before *anything* else is processed, so a
        partitioned ex-master cannot commit on a lapsed lease."""
        if self.state not in (MASTER, WAITING):
            return []
        if now < self.proposer.lease_expiry:
            return []
        return self._depose(now, reason="lease_expired")

    def _depose(self, now: float, reason: str) -> list[Effect]:
        if self.obs.active:
            self.obs.emit(
                REPLICA_DEPOSED, now, self.name,
                ballot=self.proposer.ballot, reason=reason,
            )
        self.state = FOLLOWER
        self.inner = None
        self.proposer.abort_round()
        self._queue.clear()
        self._believed_master = ""
        self._belief_expiry = 0.0
        # No CancelTimer fan-out for the dropped inner engine: its timers
        # carry the old epoch in their key and fire as no-ops.
        return []

    def _rearm_master_check(self, now: float) -> list[Effect]:
        """(Re-)arm the expiry check for the remaining validity.

        Also the backward-clock-step guard: a ``master:check`` firing
        *early* (clock stepped back while it was armed) lands here and
        re-arms for the remainder instead of deposing a valid master.
        """
        if self.state not in (MASTER, WAITING):
            return []
        remaining = self.proposer.lease_expiry - now
        if remaining <= 0.0:
            return []  # _check_mastership already deposed us
        return [SetTimer("master:check", remaining)]

    # -- election / renewal ----------------------------------------------------

    def _on_tick(self, now: float) -> list[Effect]:
        effects: list[Effect] = [SetTimer("paxos:tick", self.config.tick)]
        if now < self._join_at:
            return effects
        if self.state in (MASTER, WAITING):
            # Renew before the lease runs out; WAITING renews too — the
            # handoff wait can be longer than one master term.
            remaining = self.proposer.lease_expiry - now
            if remaining < self.config.master_term / 2.0 and self.proposer.phase == "idle":
                effects.extend(self._start_round(now))
            return effects
        # Follower: start a round only when no unexpired lease is known
        # locally and our backoff has elapsed.
        if self.proposer.phase != "idle":
            return effects
        if self.acceptor.accepted_remaining(now) > 0.0:
            return effects
        if now < self._next_attempt_at:
            return effects
        effects.extend(self._start_round(now))
        return effects

    def _start_round(self, now: float) -> list[Effect]:
        prepare = self.proposer.start_round(now)
        effects: list[Effect] = [SetTimer("paxos:round", self.config.round_timeout)]
        effects.extend(
            Send(peer, prepare) for peer in self.config.hosts if peer != self.name
        )
        # Self-delivery short-circuits the network.
        reply = self.acceptor.on_prepare(prepare, now)
        effects.extend(self._apply_outcome(
            self.proposer.on_prepare_reply(self.name, reply, now), now
        ))
        return effects

    def _on_round_timeout(self, now: float) -> list[Effect]:
        if self.proposer.phase != "idle":
            self.proposer.abort_round()
            self._next_attempt_at = now + self._stagger()
        return []

    def _handle_paxos(self, msg: Message, src: HostId, now: float) -> list[Effect]:
        if now < self._join_at:
            # Restart abstention: a diskless acceptor that answered here
            # could break a promise it no longer remembers.
            return []
        if isinstance(msg, PrepareRequest):
            return [Send(src, self.acceptor.on_prepare(msg, now))]
        if isinstance(msg, ProposeRequest):
            reply = self.acceptor.on_propose(msg, now)
            if reply.accepted:
                self._believed_master = msg.holder
                self._belief_expiry = self.acceptor.accepted_expiry
            return [Send(src, reply)]
        if isinstance(msg, PrepareReply):
            return self._apply_outcome(
                self.proposer.on_prepare_reply(src, msg, now), now
            )
        return self._apply_outcome(
            self.proposer.on_propose_reply(src, msg, now), now
        )

    def _apply_outcome(self, outcome, now: float) -> list[Effect]:
        if outcome.kind == PROPOSE:
            effects: list[Effect] = [
                Send(peer, outcome.message)
                for peer in self.config.hosts
                if peer != self.name
            ]
            reply = self.acceptor.on_propose(outcome.message, now)
            if reply.accepted:
                self._believed_master = self.name
                self._belief_expiry = self.acceptor.accepted_expiry
            effects.extend(self._apply_outcome(
                self.proposer.on_propose_reply(self.name, reply, now), now
            ))
            return effects
        if outcome.kind == ELECTED:
            return self._on_elected(outcome, now)
        if outcome.kind == BACKOFF:
            wait = self._stagger()
            if outcome.retry_after > 0.0:
                # The reported remaining validity is a duration on the
                # *acceptor's* clock; stretch it for our own drift.
                wait += safe_waitout(
                    outcome.retry_after, 0.0, self.config.drift_bound
                )
            self._next_attempt_at = now + wait
        return []

    def _on_elected(self, outcome, now: float) -> list[Effect]:
        self._believed_master = self.name
        if self.state == MASTER:
            # Renewal while serving: just extend validity.
            return self._rearm_master_check(now)
        if self.state == WAITING:
            # Renewal during the handoff wait: validity extended, the
            # serve_at deadline is unchanged.
            return self._rearm_master_check(now)
        # Fresh mastership: the handoff wait starts.  Anchored *here* (at
        # accept-majority time): by now the prior master's lease had
        # expired at some acceptor of our prepare majority, which bounds
        # its residual belief by one drift-stretched master term, and any
        # file lease it granted within that belief by one more
        # drift-stretched max file term (DESIGN.md §17 walks the algebra).
        # A virgin election — every counted promise reported zero lifetime
        # accepts — proves there is nothing to wait out.
        self.state = WAITING
        wait = 0.0 if outcome.virgin else safe_waitout(
            self.config.master_term + self.config.max_file_term,
            self.config.epsilon,
            self.config.drift_bound,
        )
        self._serve_at = now + wait
        if self.obs.active:
            self.obs.emit(
                REPLICA_ELECTED, now, self.name,
                ballot=self.proposer.ballot, serve_at=self._serve_at,
            )
        effects: list[Effect] = []
        effects.extend(self._rearm_master_check(now))
        if wait <= 0.0:
            effects.extend(self._begin_serving(now))
        else:
            effects.append(SetTimer("handoff", self._serve_at - now))
        return effects

    def _on_handoff(self, now: float) -> list[Effect]:
        if self.state != WAITING:
            return []  # stale timer from an abandoned mastership
        if now < self._serve_at:
            # Fired before the deadline: the clock stepped backward while
            # the timer was armed.  Re-arm for the remainder — serving now
            # would break the handoff invariant (the §5 sweep's bug class).
            return [SetTimer("handoff", self._serve_at - now)]
        return self._begin_serving(now)

    def _begin_serving(self, now: float) -> list[Effect]:
        self.state = MASTER
        self.epoch += 1
        # A fresh inner engine: every pre-handoff lease has been waited
        # out, so an empty lease table is exactly right; the shared store
        # carries the data.  No recovery window — the wait subsumed it.
        self.inner = ServerEngine(
            self.name,
            self.store,
            self.policy,
            config=ServerConfig(
                epsilon=self.config.server.epsilon,
                announce_period=self.config.server.announce_period,
                announce_grace=self.config.server.announce_grace,
                recovery_delay=0.0,
                sweep_period=self.config.server.sweep_period,
            ),
            now=now,
            obs=self.obs,
        )
        queued, self._queue = self._queue, deque()
        if self.obs.active:
            self.obs.emit(
                REPLICA_SERVE, now, self.name,
                ballot=self.proposer.ballot, queued=len(queued),
            )
        effects = self._wrap_inner(self.inner.startup_effects(now))
        for msg, src in queued:
            effects.extend(self._wrap_inner(self.inner.handle_message(msg, src, now)))
        return effects

    # -- client traffic --------------------------------------------------------

    def _handle_client(self, msg: Message, src: HostId, now: float) -> list[Effect]:
        if self.state == MASTER:
            return self._wrap_inner(self.inner.handle_message(msg, src, now))
        if self.state == WAITING:
            self._queue.append((msg, src))
            if len(self._queue) > self.config.queue_limit:
                self._queue.popleft()
                self._queue_dropped += 1
            return []
        # Follower: redirect with the best hint we have.
        master = self._master_hint(now)
        if self.obs.active:
            self.obs.emit(REPLICA_REDIRECT, now, self.name, src=src, master=master)
        req_id = getattr(msg, "req_id", None)
        if req_id is None:
            return []  # id-less messages (approvals, relinquish) just drop
        return [Send(src, NotMaster(req_id, master=master))]

    def _master_hint(self, now: float) -> HostId:
        if self._believed_master and now < self._belief_expiry:
            return self._believed_master
        return ""

    # -- inner engine plumbing -------------------------------------------------

    def _wrap_inner(self, effects: list[Effect]) -> list[Effect]:
        """Namespace the inner engine's timers with the mastership epoch."""
        prefix = f"inner:{self.epoch}:"
        wrapped: list[Effect] = []
        for effect in effects:
            if isinstance(effect, SetTimer):
                wrapped.append(SetTimer(prefix + effect.key, effect.delay))
            else:
                wrapped.append(effect)
        return wrapped

    def _on_inner_timer(self, key: str, now: float) -> list[Effect]:
        _, epoch_str, inner_key = key.split(":", 2)
        if self.state != MASTER or int(epoch_str) != self.epoch:
            return []  # a deposed epoch's timer: harmless no-op
        return self._wrap_inner(self.inner.handle_timer(inner_key, now))

    # -- introspection ---------------------------------------------------------

    @property
    def is_master(self) -> bool:
        """True while the inner engine is serving (validity as of the last
        authoritative check)."""
        return self.state == MASTER

    def master_valid(self, now: float) -> bool:
        """Authoritative: serving *and* the master lease is unexpired."""
        return self.state == MASTER and now < self.proposer.lease_expiry

    def max_term_granted(self, now: float) -> float:
        """Upper bound on outstanding lease durations granted here — what
        a restart of this host must wait out (driver crash bookkeeping)."""
        if self.inner is None:
            return 0.0
        return self.config.max_file_term

    def status(self, now: float) -> dict:
        """Operational snapshot for monitoring and tests."""
        snapshot = {
            "now": now,
            "state": self.state,
            "ballot": self.proposer.ballot,
            "lease_expiry": self.proposer.lease_expiry,
            "believed_master": self._master_hint(now),
            "queued": len(self._queue),
            "queue_dropped": self._queue_dropped,
            "epoch": self.epoch,
        }
        if self.inner is not None:
            snapshot["inner"] = self.inner.status(now)
        return snapshot


# Re-exported for drivers that arm validity anchored at prepare-send.
__all__ = [
    "FOLLOWER",
    "MASTER",
    "WAITING",
    "ReplicaConfig",
    "ReplicaEngine",
    "restart_join_delay",
    "safe_local_expiry",
]
