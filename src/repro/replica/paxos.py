"""Sans-io PaxosLease: diskless Paxos specialized for lease negotiation.

PaxosLease (PAPERS.md) negotiates a *master lease* instead of a log entry.
Two specializations make it diskless and clock-fault tolerant:

* Acceptor state — the promised ballot and the accepted lease — itself
  **expires**.  An acceptor that accepted a lease forgets it once the
  lease term runs out on its own clock, so nothing needs stable storage;
  restart safety comes from the host waiting out one maximum lease term
  before rejoining (it cannot break a promise it would still be bound by).
* Lease validity travels as a **duration**, never an instant (the paper's
  §5 discipline).  An acceptor reports the *remaining* validity of its
  accepted lease at reply time; the proposer anchors its own validity at
  the local time it *started the round* and shrinks it with
  :func:`repro.clock.sync.safe_local_expiry`, while acceptors hold the
  full term from receive time — so the holder always stops believing
  before any acceptor stops enforcing.

The proposer only ever proposes **itself**: if a prepare majority reports
any unexpired foreign lease, the round aborts and the proposer backs off
for that lease's remaining validity.  Together with promise/accept ballot
ordering this yields at-most-one master lease per instant under arbitrary
message loss, duplication and reordering (``tests/replica/
test_paxos_properties.py`` drives the state machines through exactly
those schedules).

Both classes are pure state machines: no I/O, no clock reads — every
entry point takes ``now`` (the host's local clock) and returns plain
messages or an :class:`Outcome` for the surrounding engine to act on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock.sync import safe_local_expiry
from repro.protocol.messages import (
    PrepareReply,
    PrepareRequest,
    ProposeReply,
    ProposeRequest,
)


def ballot_number(round_: int, node_index: int, n_replicas: int) -> int:
    """Globally unique, per-proposer strictly increasing ballot.

    ``round * n + index + 1``: disjoint across proposers (distinct
    residues mod ``n``), increasing in ``round``, and strictly positive —
    0 is the reserved "no ballot" value.
    """
    return round_ * n_replicas + node_index + 1


class Acceptor:
    """PaxosLease acceptor: promised/accepted state that expires.

    Diskless by design — see the module docstring.  ``promised_ballot``
    never decreases (ballot monotonicity; the property suite pins this),
    but the accepted lease clears itself once its term runs out on this
    host's clock.
    """

    __slots__ = ("promised_ballot", "accepted_ballot", "accepted_holder",
                 "accepted_expiry", "ever_accepted")

    def __init__(self) -> None:
        self.promised_ballot = 0
        self.accepted_ballot = 0
        self.accepted_holder: str | None = None
        #: Sticky history bit: has this acceptor *ever* accepted a lease?
        #: Survives lease expiry (but not restart — the restart abstention
        #: window is what keeps the amnesia safe, see the engine).
        self.ever_accepted = False
        #: Local-clock instant the accepted lease stops binding this
        #: acceptor.  Anchored at *receive* time with the full term —
        #: deliberately later (in real time) than the holder's own
        #: send-anchored, drift-shrunk expiry.
        self.accepted_expiry = 0.0

    def _expire(self, now: float) -> None:
        if self.accepted_ballot and now >= self.accepted_expiry:
            self.accepted_ballot = 0
            self.accepted_holder = None
            self.accepted_expiry = 0.0

    def accepted_remaining(self, now: float) -> float:
        """Remaining validity of the accepted lease (0.0 when none)."""
        self._expire(now)
        if not self.accepted_ballot:
            return 0.0
        return self.accepted_expiry - now

    def on_prepare(self, msg: PrepareRequest, now: float) -> PrepareReply:
        """Phase 1: promise the ballot unless a higher one was promised.

        Equal ballots re-promise (idempotent under retransmission; ballots
        are unique per proposer, so an equal ballot is the same proposer).
        """
        self._expire(now)
        if msg.ballot < self.promised_ballot:
            return PrepareReply(ballot=msg.ballot, promised=False)
        self.promised_ballot = msg.ballot
        return PrepareReply(
            ballot=msg.ballot,
            promised=True,
            accepted_ballot=self.accepted_ballot,
            accepted_holder=self.accepted_holder,
            accepted_expires_in=self.accepted_remaining(now),
            ever_accepted=self.ever_accepted,
        )

    def on_propose(self, msg: ProposeRequest, now: float) -> ProposeReply:
        """Phase 2: accept the lease unless a higher ballot was promised."""
        self._expire(now)
        if msg.ballot < self.promised_ballot:
            return ProposeReply(ballot=msg.ballot, accepted=False)
        self.promised_ballot = msg.ballot
        self.accepted_ballot = msg.ballot
        self.accepted_holder = msg.holder
        self.accepted_expiry = now + msg.term
        self.ever_accepted = True
        return ProposeReply(ballot=msg.ballot, accepted=True)


#: :attr:`Outcome.kind` values.
NONE = "none"          #: keep collecting replies.
PROPOSE = "propose"    #: prepare majority reached — broadcast ``message``.
ELECTED = "elected"    #: accept majority reached — lease held until ``expiry``.
BACKOFF = "backoff"    #: round over (reject or foreign lease); retry later.


@dataclass(frozen=True)
class Outcome:
    """What the engine should do after feeding a reply to the proposer.

    Attributes:
        kind: one of :data:`NONE`/:data:`PROPOSE`/:data:`ELECTED`/
            :data:`BACKOFF`.
        message: the :class:`ProposeRequest` to broadcast (``PROPOSE``).
        retry_after: minimum wait before the next attempt (``BACKOFF``) —
            the reported remaining validity of a foreign lease, **not**
            drift-compensated; callers stretch it with
            :func:`repro.clock.sync.safe_waitout`.
        expiry: local-clock end of our lease validity (``ELECTED``).
        virgin: ``ELECTED`` only — every counted prepare promise reported
            a lifetime of zero accepted leases, proving the group never
            had a master; the handoff wait-out may be skipped.
    """

    kind: str
    message: ProposeRequest | None = None
    retry_after: float = 0.0
    expiry: float = 0.0
    virgin: bool = False


class Proposer:
    """PaxosLease proposer: runs prepare/propose rounds for its own lease.

    One round at a time; replies for any other ballot (stale, duplicated
    or reordered) are ignored.  The surrounding engine owns timers: it
    calls :meth:`start_round`, transmits what this class returns, feeds
    replies back in, and aborts the round on its own timeout.
    """

    def __init__(
        self,
        name: str,
        node_index: int,
        n_replicas: int,
        master_term: float,
        epsilon: float = 0.0,
        drift_bound: float = 0.0,
    ):
        if not 0 <= node_index < n_replicas:
            raise ValueError(f"node_index {node_index} out of range of {n_replicas}")
        self.name = name
        self.node_index = node_index
        self.n_replicas = n_replicas
        self.master_term = master_term
        self.epsilon = epsilon
        self.drift_bound = drift_bound
        self.round = 0
        self.ballot = 0
        #: "idle" | "preparing" | "proposing" — the *round* phase;
        #: whether we currently hold the lease is :meth:`holds_lease`.
        self.phase = "idle"
        #: Local-clock end of our master-lease validity (0.0 = never held).
        self.lease_expiry = 0.0
        self._promises: set[str] = set()
        self._accepts: set[str] = set()
        self._foreign_remaining = 0.0
        self._any_history = False
        self._virgin_round = False
        self._anchor = 0.0

    @property
    def majority(self) -> int:
        """Promises/accepts needed: a strict majority of the group."""
        return self.n_replicas // 2 + 1

    def holds_lease(self, now: float) -> bool:
        """True while this proposer may consider itself the holder."""
        return now < self.lease_expiry

    def start_round(self, now: float) -> PrepareRequest:
        """Begin a new round; returns the prepare to broadcast (self too)."""
        self.round += 1
        self.ballot = ballot_number(self.round, self.node_index, self.n_replicas)
        self.phase = "preparing"
        self._promises = set()
        self._accepts = set()
        self._foreign_remaining = 0.0
        self._any_history = False
        self._virgin_round = False
        self._anchor = now
        return PrepareRequest(ballot=self.ballot)

    def abort_round(self) -> None:
        """Abandon the in-flight round (engine-side round timeout)."""
        self.phase = "idle"

    def on_prepare_reply(self, src: str, msg: PrepareReply, now: float) -> Outcome:
        """Feed in one acceptor's phase-1 reply; returns what to do next.

        At a counted majority of promises: :data:`BACKOFF` for any live
        foreign lease (never compete with an unexpired holder), else
        :data:`PROPOSE` with the request to broadcast.
        """
        if self.phase != "preparing" or msg.ballot != self.ballot:
            return Outcome(NONE)
        if not msg.promised:
            # A higher ballot is out there; yield the floor.
            self.phase = "idle"
            return Outcome(BACKOFF)
        if msg.accepted_ballot and msg.accepted_holder != self.name:
            self._foreign_remaining = max(
                self._foreign_remaining, msg.accepted_expires_in
            )
        if msg.ever_accepted:
            self._any_history = True
        self._promises.add(src)
        if len(self._promises) < self.majority:
            return Outcome(NONE)
        if self._foreign_remaining > 0.0:
            # Someone else's lease is (or may still be) live: never compete
            # with an unexpired lease — wait it out instead.  This check is
            # what makes at-most-one-master hold: the previous holder's
            # accept majority intersects our prepare majority, so a live
            # lease is always reported by at least one counted promise.
            self.phase = "idle"
            return Outcome(BACKOFF, retry_after=self._foreign_remaining)
        self.phase = "proposing"
        self._virgin_round = not self._any_history
        return Outcome(
            PROPOSE,
            message=ProposeRequest(
                ballot=self.ballot, holder=self.name, term=self.master_term
            ),
        )

    def on_propose_reply(self, src: str, msg: ProposeReply, now: float) -> Outcome:
        """Feed in one acceptor's phase-2 reply; returns what to do next.

        At a majority of accepts the lease is won: :data:`ELECTED`, with
        the drift-shrunk local validity in ``expiry``.
        """
        if self.phase != "proposing" or msg.ballot != self.ballot:
            return Outcome(NONE)
        if not msg.accepted:
            self.phase = "idle"
            return Outcome(BACKOFF)
        self._accepts.add(src)
        if len(self._accepts) < self.majority:
            return Outcome(NONE)
        self.phase = "idle"
        # Validity anchored at round *start* (the prepare send): every
        # acceptor anchored later (at its propose receive) with the full
        # term, so our shrunk window closes first in real time.
        self.lease_expiry = safe_local_expiry(
            self._anchor, self.master_term, self.epsilon, self.drift_bound
        )
        return Outcome(ELECTED, expiry=self.lease_expiry, virgin=self._virgin_round)
