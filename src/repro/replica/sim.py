"""The replicated DES cluster: N lease-authority replicas, one oracle.

:func:`build_replicated_cluster` mirrors :func:`repro.sim.driver.
build_cluster` but stands up one :class:`SimReplica` per replica (hosts
``r0 .. r{N-1}``) over a **shared** :class:`~repro.storage.store.
FileStore` — the replicas replicate the *lease authority* (who may grant
and commit), not the data plane, exactly as PaxosLease replicates the
master lease and nothing else.  Every client addresses the whole group
and follows :class:`~repro.protocol.messages.NotMaster` redirects.

:func:`build_sharded_replicated_cluster` composes with sharding: shard
``k``'s authority is the replica group ``s{k}r0 .. s{k}r{M-1}``, each
group independently elected over its own shard store.

Crash modelling: a replica crash loses *everything* (the engines are
diskless); on restart the replica rejoins only after
:func:`~repro.replica.engine.restart_join_delay` — the PaxosLease rule
that makes disklessness safe — passed in as the fresh engine's
``join_delay``.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Callable

from repro.lease.policy import FixedTermPolicy, TermPolicy
from repro.protocol.client import ClientConfig
from repro.protocol.effects import Broadcast, CancelTimer, Effect, Send, SetTimer
from repro.protocol.messages import Message
from repro.protocol.server import ServerConfig
from repro.replica.engine import ReplicaConfig, ReplicaEngine, restart_join_delay
from repro.shard.client import ShardedClientEngine
from repro.shard.router import ShardRouter, replica_hosts
from repro.shard.store import ShardedStore
from repro.sim.driver import Cluster, SimClient, _TimerBank
from repro.sim.host import Host
from repro.sim.kernel import Kernel
from repro.sim.network import Network, NetworkParams
from repro.sim.oracle import ConsistencyOracle
from repro.storage.store import FileStore
from repro.types import HostId


def policy_max_term(policy: TermPolicy, default: float = 10.0) -> float:
    """The longest finite file-lease term ``policy`` can grant.

    The handoff wait-out and the restart abstention are both sized by
    this.  Stock policies expose it (``FixedTermPolicy.seconds``,
    ``AnalyticTermPolicy.max_term``); anything opaque gets ``default``.
    """
    for attr in ("seconds", "max_term"):
        value = getattr(policy, attr, None)
        if isinstance(value, (int, float)) and value > 0 and not math.isinf(value):
            return float(value)
    return default


class SimReplica:
    """One lease-authority replica bound to a simulated host."""

    def __init__(
        self,
        host: Host,
        network: Network,
        store: FileStore,
        policy: TermPolicy,
        config: ReplicaConfig,
        use_multicast: bool = True,
        obs=None,
    ):
        self.host = host
        self.network = network
        self.store = store
        self.policy = policy
        self.config = config
        self.use_multicast = use_multicast
        self.obs = obs
        self.engine: ReplicaEngine | None = None
        self._timers = _TimerBank(host, self._on_timer, obs=obs)
        host.set_handler(self._on_message)
        host.on_crash(self._on_crash)
        host.on_restart(self._on_restart)
        self._boot(join_delay=config.join_delay)

    # -- lifecycle -------------------------------------------------------------

    def _boot(self, join_delay: float) -> None:
        config = dataclasses.replace(self.config, join_delay=join_delay)
        self.engine = ReplicaEngine(
            self.host.name,
            self.store,
            self.policy,
            config,
            now=self.host.clock.now(),
            obs=self.obs,
        )
        self._run_effects(self.engine.startup_effects(self.host.clock.now()))

    def _on_crash(self) -> None:
        # Diskless: promised ballots, the accepted lease, the master
        # lease, the inner engine's lease table — all gone.  Safety does
        # not depend on any of it surviving; it depends on the restart
        # abstention below.
        self.engine = None
        self._timers.cancel_all()

    def _on_restart(self) -> None:
        self._boot(join_delay=restart_join_delay(self.config))

    # -- plumbing ----------------------------------------------------------------

    def _on_message(self, payload: Message, src: HostId) -> None:
        self._run_effects(
            self.engine.handle_message(payload, src, self.host.clock.now())
        )

    def _on_timer(self, key: str) -> None:
        self._run_effects(self.engine.handle_timer(key, self.host.clock.now()))

    def _run_effects(self, effects: list[Effect]) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                self.network.unicast(
                    self.host.name, effect.dst, effect.message, kind=effect.message.kind
                )
            elif isinstance(effect, Broadcast):
                if self.use_multicast:
                    self.network.multisend(
                        self.host.name,
                        effect.dsts,
                        effect.message,
                        kind=effect.message.kind,
                    )
                else:
                    for dst in effect.dsts:
                        self.network.unicast(
                            self.host.name, dst, effect.message, kind=effect.message.kind
                        )
            elif isinstance(effect, SetTimer):
                self._timers.set(effect.key, effect.delay)
            elif isinstance(effect, CancelTimer):
                self._timers.cancel(effect.key)
            else:
                raise TypeError(f"replica cannot execute effect {effect!r}")


@dataclass
class ReplicatedCluster(Cluster):
    """A :class:`~repro.sim.driver.Cluster` whose authority is replicated.

    ``server`` (the inherited field) aliases replica 0 of group 0 so
    generic code can still reach *a* server host; ``groups`` holds every
    replica, one list per shard (a single list when unsharded).
    """

    groups: list[list[SimReplica]] = field(default_factory=list)
    router: ShardRouter | None = None

    @property
    def replicas(self) -> list[SimReplica]:
        """Every replica across every group, flat."""
        return [replica for group in self.groups for replica in group]

    @property
    def n_replicas(self) -> int:
        """Replicas per group."""
        return len(self.groups[0])

    def master_of(self, shard: int = 0) -> SimReplica | None:
        """The group's current serving master (None mid-election)."""
        for replica in self.groups[shard]:
            if (
                replica.host.up
                and replica.engine is not None
                and replica.engine.master_valid(replica.host.clock.now())
            ):
                return replica
        return None


def _replica_config(
    hosts: tuple[HostId, ...],
    index: int,
    policy: TermPolicy,
    server_config: ServerConfig | None,
    master_term: float,
    epsilon: float,
    drift_bound: float,
) -> ReplicaConfig:
    return ReplicaConfig(
        hosts=hosts,
        index=index,
        master_term=master_term,
        max_file_term=policy_max_term(policy),
        epsilon=epsilon,
        drift_bound=drift_bound,
        server=server_config or ServerConfig(),
    )


def build_replicated_cluster(
    n_replicas: int,
    n_clients: int = 2,
    policy: TermPolicy | None = None,
    network_params: NetworkParams | None = None,
    client_config: ClientConfig | None = None,
    server_config: ServerConfig | None = None,
    master_term: float = 2.0,
    use_multicast: bool = True,
    seed: int = 0,
    strict_oracle: bool = True,
    setup_store: Callable[[FileStore], None] | None = None,
    client_clock_params: Callable[[int], tuple[float, float]] | None = None,
    server_clock_params: tuple[float, float] = (0.0, 0.0),
    obs=None,
) -> ReplicatedCluster:
    """Assemble a simulated cluster with a replicated lease authority.

    Mirrors :func:`repro.sim.driver.build_cluster`; differences:

    Args:
        n_replicas: replica count (hosts ``r0 .. r{N-1}``); odd values
            give the usual majority margins, 1 degenerates to a
            self-electing single authority.
        server_config: config of the *inner* server engine each master
            runs; its ``recovery_delay`` is ignored (the handoff wait-out
            subsumes crash recovery).
        master_term: duration of the PaxosLease master lease.
        server_clock_params: (offset, drift) applied to every replica
            host; per-replica clock faults go through the fault injector.
    """
    if n_replicas < 1:
        raise ValueError(f"need at least one replica: {n_replicas}")
    kernel = Kernel(seed=seed, obs=obs)
    network = Network(kernel, network_params or NetworkParams(), obs=obs)
    store = FileStore()
    if setup_store is not None:
        setup_store(store)
    oracle = ConsistencyOracle(kernel, store, strict=strict_oracle, obs=obs)

    term_policy = policy or FixedTermPolicy(10.0)
    client_cfg = client_config or ClientConfig()
    hosts = replica_hosts(n_replicas)
    offset, drift = server_clock_params
    group: list[SimReplica] = []
    for j, host_name in enumerate(hosts):
        host = Host(host_name, kernel, clock_offset=offset, clock_drift=drift)
        network.attach(host)
        group.append(
            SimReplica(
                host,
                network,
                store,
                term_policy,
                _replica_config(
                    hosts, j, term_policy, server_config,
                    master_term, client_cfg.epsilon, client_cfg.drift_bound,
                ),
                use_multicast=use_multicast,
                obs=obs,
            )
        )

    clients = []
    for i in range(n_clients):
        c_offset, c_drift = (0.0, 0.0)
        if client_clock_params is not None:
            c_offset, c_drift = client_clock_params(i)
        host = Host(f"c{i}", kernel, clock_offset=c_offset, clock_drift=c_drift)
        network.attach(host)
        clients.append(
            SimClient(
                host, network, hosts, config=client_config, oracle=oracle, obs=obs
            )
        )
    return ReplicatedCluster(
        kernel=kernel,
        network=network,
        server=group[0],
        clients=clients,
        store=store,
        oracle=oracle,
        obs=obs,
        groups=[group],
    )


def build_sharded_replicated_cluster(
    n_shards: int,
    n_replicas: int,
    n_clients: int = 2,
    policy: TermPolicy | None = None,
    network_params: NetworkParams | None = None,
    client_config: ClientConfig | None = None,
    server_config: ServerConfig | None = None,
    master_term: float = 2.0,
    use_multicast: bool = True,
    seed: int = 0,
    strict_oracle: bool = True,
    setup_store: Callable[[ShardedStore], None] | None = None,
    client_clock_params: Callable[[int], tuple[float, float]] | None = None,
    server_clock_params: tuple[float, float] = (0.0, 0.0),
    obs=None,
) -> ReplicatedCluster:
    """Sharding × replication: each shard an independent replica group.

    Shard ``k``'s authority is ``s{k}r0 .. s{k}r{M-1}`` over shard
    ``k``'s store; elections, handoffs and redirects are per group.  The
    client runs a :class:`~repro.shard.client.ShardedClientEngine` whose
    per-shard inner engines each target their shard's whole group.
    """
    if n_shards < 1:
        raise ValueError(f"need at least one shard: {n_shards}")
    if n_replicas < 1:
        raise ValueError(f"need at least one replica: {n_replicas}")
    kernel = Kernel(seed=seed, obs=obs)
    network = Network(kernel, network_params or NetworkParams(), obs=obs)
    router = ShardRouter(n_shards)
    store = ShardedStore(n_shards, router=router)
    if setup_store is not None:
        setup_store(store)

    oracle = ConsistencyOracle(kernel, store.shards[0], strict=strict_oracle, obs=obs)
    for k in range(1, n_shards):
        oracle.attach_store(store.shards[k], dir_prefix=f"s{k}/")

    term_policy = policy or FixedTermPolicy(10.0)
    client_cfg = client_config or ClientConfig()
    offset, drift = server_clock_params
    groups: list[list[SimReplica]] = []
    group_hosts: list[tuple[HostId, ...]] = []
    for k in range(n_shards):
        hosts = replica_hosts(n_replicas, shard=k)
        group_hosts.append(hosts)
        group = []
        for j, host_name in enumerate(hosts):
            host = Host(host_name, kernel, clock_offset=offset, clock_drift=drift)
            network.attach(host)
            group.append(
                SimReplica(
                    host,
                    network,
                    store.shards[k],
                    term_policy,
                    _replica_config(
                        hosts, j, term_policy, server_config,
                        master_term, client_cfg.epsilon, client_cfg.drift_bound,
                    ),
                    use_multicast=use_multicast,
                    obs=obs,
                )
            )
        groups.append(group)

    clients = []
    for i in range(n_clients):
        c_offset, c_drift = (0.0, 0.0)
        if client_clock_params is not None:
            c_offset, c_drift = client_clock_params(i)
        host = Host(f"c{i}", kernel, clock_offset=c_offset, clock_drift=c_drift)
        network.attach(host)
        clients.append(
            SimClient(
                host,
                network,
                tuple(group_hosts),
                config=client_config,
                oracle=oracle,
                engine_cls=ShardedClientEngine,
                obs=obs,
            )
        )
    return ReplicatedCluster(
        kernel=kernel,
        network=network,
        server=groups[0][0],
        clients=clients,
        store=store,
        oracle=oracle,
        obs=obs,
        groups=groups,
        router=router,
    )
