"""Replicated lease authority: a PaxosLease master lease over the lease table.

The single lease server of the base protocol is the availability weak spot
the paper's §4 fault analysis concedes: a server crash stalls every write
for a full lease term, and a naively promoted replacement is *unsafe*
under §5 clock faults.  This package replicates the authority:

* :mod:`repro.replica.paxos` — the sans-io PaxosLease acceptor/proposer
  pair: diskless Paxos specialized for negotiating a *master lease*
  (promised/accepted state itself expires, so nothing needs stable
  storage; a restarted node simply waits out one maximum lease term
  before rejoining).
* :mod:`repro.replica.engine` — :class:`ReplicaEngine`, which runs the
  acceptor/proposer, and — on the replica that wins the master lease —
  an inner :class:`~repro.protocol.server.ServerEngine` that serves the
  ordinary lease protocol until deposed.  Non-masters redirect clients
  with :class:`~repro.protocol.messages.NotMaster`.
* :mod:`repro.replica.sim` — the DES driver:
  :func:`build_replicated_cluster` wires N replicas, the shared store and
  the consistency oracle into a :class:`~repro.sim.driver.Cluster`.
* :mod:`repro.replica.node` — the asyncio runtime replica,
  SIGKILL-able for chaos testing.

The handoff invariant (DESIGN.md §17): a newly elected master may not
grant or commit anything until the prior master's outstanding file leases
*and* residual master-lease belief have provably expired on the new
master's own drift-compensated clock (:func:`repro.clock.sync.safe_waitout`).
"""

from repro.replica.engine import ReplicaConfig, ReplicaEngine, restart_join_delay
from repro.replica.paxos import Acceptor, Outcome, Proposer, ballot_number

__all__ = [
    "Acceptor",
    "Outcome",
    "Proposer",
    "ReplicaConfig",
    "ReplicaEngine",
    "ballot_number",
    "restart_join_delay",
]
