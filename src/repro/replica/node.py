"""Asyncio host for the replicated lease authority (DESIGN.md §17).

:class:`ReplicaServerNode` drives one :class:`~repro.replica.engine.
ReplicaEngine` over a real transport, the same way
:class:`~repro.runtime.node.LeaseServerNode` drives a plain
:class:`~repro.protocol.server.ServerEngine`.  Point ``N`` of these at
the same shared :class:`~repro.storage.store.FileStore` (one hub, or one
fabric of sockets) and they elect a master among themselves; an
unmodified :class:`~repro.runtime.node.LeaseClientNode` given the tuple
of replica host names fails over between them on ``NotMaster`` redirects
and RPC timeouts.

The crash model is SIGKILL, not shutdown: :meth:`ReplicaServerNode.kill`
drops the engine and every timer on the floor with **no goodbye traffic**
— peers and clients learn of the death only by silence, exactly like the
simulator's crash fault.  Frames already handed to the transport may
still deliver (packets on the wire outlive the process).  A later
:meth:`~ReplicaServerNode.restart` builds a fresh engine behind the full
diskless abstention window (:func:`~repro.replica.engine.
restart_join_delay`): the reborn acceptor stays silent until everything
its predecessor may have promised has provably expired.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ReproError
from repro.lease.policy import TermPolicy
from repro.replica.engine import ReplicaConfig, ReplicaEngine, restart_join_delay
from repro.runtime.node import _EngineNode
from repro.runtime.transport import Transport
from repro.storage.store import FileStore
from repro.types import HostId


class ReplicaServerNode(_EngineNode):
    """A real-time replica of the replicated lease authority."""

    def __init__(
        self,
        transport: Transport,
        store: FileStore,
        policy: TermPolicy,
        config: ReplicaConfig,
        clock=None,
        obs=None,
    ):
        """Args:
            transport: this replica's endpoint; its name must equal
                ``config.hosts[config.index]``.
            store: the store shared by the whole replica group.
            policy: file-lease term policy for the inner server engine.
            config: the replica group shape and timing knobs.
        """
        super().__init__(transport, clock, obs=obs)
        self.store = store
        self.policy = policy
        self.config = config
        now = self.clock.now()
        self.engine: ReplicaEngine | None = ReplicaEngine(
            transport.name, store, policy, config, now=now, obs=self.obs
        )
        self._run_effects(self.engine.startup_effects(now))

    def _engine(self) -> ReplicaEngine:
        if self.engine is None:
            raise ReproError(f"replica {self.name!r} is down (killed)")
        return self.engine

    # -- dispatch guards: a killed replica is silent, not erroring ---------------

    def _on_message(self, message, src: HostId) -> None:
        if self.engine is None:
            return  # dead processes receive nothing
        super()._on_message(message, src)

    def _on_timer(self, key: str) -> None:
        if self.engine is None:
            self._timers.pop(key, None)
            return
        super()._on_timer(key)

    # -- crash / reboot ----------------------------------------------------------

    @property
    def alive(self) -> bool:
        """False between :meth:`kill` and :meth:`restart`."""
        return self.engine is not None

    def kill(self) -> None:
        """SIGKILL: drop the engine and all timers abruptly, no goodbye.

        The transport stays open (the OS-level connection may even stay
        up for a moment — just like a killed process's sockets), but
        every inbound message and timer from here on is ignored, and no
        farewell or state transfer is ever sent.  Idempotent.
        """
        self.engine = None
        for key in list(self._timers):
            self._cancel_timer(key)

    def restart(self) -> None:
        """Reboot after :meth:`kill`: a fresh, abstaining incarnation.

        The new engine starts as a follower with ``join_delay`` set to
        :func:`~repro.replica.engine.restart_join_delay` — the diskless
        restart rule: an acceptor that forgot its promises must not
        answer Paxos traffic until every promise or lease it may have
        made has expired on every clock.
        """
        if self.engine is not None:
            self.kill()
        now = self.clock.now()
        config = dataclasses.replace(
            self.config, join_delay=restart_join_delay(self.config)
        )
        self.engine = ReplicaEngine(
            self.transport.name, self.store, self.policy, config,
            now=now, obs=self.obs,
        )
        self._run_effects(self.engine.startup_effects(now))

    # -- introspection -----------------------------------------------------------

    def is_master(self) -> bool:
        """True while this replica holds a currently valid master lease."""
        return self.engine is not None and self.engine.master_valid(self.clock.now())

    def status(self) -> dict:
        """Operational snapshot (``{"state": "down"}`` while killed)."""
        if self.engine is None:
            return {"state": "down"}
        return self.engine.status(self.clock.now())
