"""The file-store substrate (a V-like file service).

The server's primary storage: versioned file contents plus a hierarchical
namespace whose name-to-file bindings and permission information are
themselves lease-coverable datums (the paper notes a repeated ``open``
needs the binding and permissions cached too, and that a rename constitutes
a write to that information).

Files are durable across server crashes — the paper's recovery argument
assumes "writes are persistent at the server across a crash" — while lease
state is volatile and must be covered by the recovery delay.
"""

from repro.storage.file import FileData
from repro.storage.namespace import Namespace
from repro.storage.store import FileStore

__all__ = ["FileData", "Namespace", "FileStore"]
