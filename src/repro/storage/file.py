"""File records."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import FileClass, Version


@dataclass
class FileData:
    """One file's primary copy at the server.

    Attributes:
        file_id: stable identifier, independent of the file's name(s).
        content: current contents.
        version: bumped on every committed write; the consistency oracle
            compares versions, so they must never repeat or go backward.
        mtime: server-clock time of the last committed write (the paper
            notes synchronized file-modified times matter for tools like
            ``make``).
        file_class: access-characteristic class driving the term policy.
        mode: simple permission string, e.g. ``"rw"`` or ``"r"``.
    """

    file_id: str
    content: bytes = b""
    version: Version = 1
    mtime: float = 0.0
    file_class: FileClass = FileClass.NORMAL
    mode: str = "rw"

    def commit_write(self, content: bytes, now: float) -> Version:
        """Apply a committed write; returns the new version."""
        self.content = content
        self.version += 1
        self.mtime = now
        return self.version

    @property
    def writable(self) -> bool:
        """True when the mode admits writes."""
        return "w" in self.mode

    @property
    def readable(self) -> bool:
        """True when the mode admits reads."""
        return "r" in self.mode


@dataclass
class DirectoryData:
    """One directory's lease-coverable metadata.

    The *payload* of a directory datum is its set of (name, target, mode)
    bindings; renaming, creating or deleting an entry is a write to this
    datum and bumps ``version``.
    """

    dir_id: str
    version: Version = 1
    entries: dict = field(default_factory=dict)  # name -> entry (see namespace)
