"""The server's primary storage: files plus namespace, datum-addressed.

:class:`FileStore` is the single authority for datum versions.  The
protocol engines read and commit through the datum interface
(:meth:`read_datum` / :meth:`commit_file_write`), which keeps them agnostic
to whether a datum is file contents or directory metadata.

Durability model (paper §5): committed file data and namespace survive a
server crash; lease state does not.  The store is therefore kept *outside*
the server engine and reattached on restart.
"""

from __future__ import annotations

import itertools

from repro.errors import NoSuchFileError, PermissionDeniedError
from repro.storage.file import FileData
from repro.storage.namespace import Namespace
from repro.types import DatumId, DatumKind, FileClass, Version


class FileStore:
    """Files, directories, and their datum versions."""

    def __init__(self) -> None:
        self.namespace = Namespace()
        self._files: dict[str, FileData] = {}
        self._ids = itertools.count(1)
        #: Optional hook called as ``on_commit(datum, version)`` after every
        #: version change (file creation, file write).  The consistency
        #: oracle uses it to build the authoritative version history.
        self.on_commit = None

    # -- file lifecycle ------------------------------------------------------

    def create_file(
        self,
        path: str,
        content: bytes = b"",
        file_class: FileClass = FileClass.NORMAL,
        mode: str = "rw",
        now: float = 0.0,
        file_id: str | None = None,
    ) -> FileData:
        """Create a file and bind it at ``path``.

        Args:
            file_id: explicit datum id.  A sharded deployment
                (:class:`repro.shard.store.ShardedStore`) allocates ids
                from one global counter — placement hashes the id, so the
                id must exist before the owning store is chosen.  Default:
                this store's own counter.
        """
        if file_id is None:
            file_id = f"file:{next(self._ids)}"
        record = FileData(
            file_id=file_id,
            content=content,
            mtime=now,
            file_class=file_class,
            mode=mode,
        )
        self.namespace.bind(path, file_id)
        self._files[file_id] = record
        if self.on_commit is not None:
            self.on_commit(DatumId.file(file_id), record.version)
        return record

    def file(self, file_id: str) -> FileData:
        """Fetch a file record by id."""
        record = self._files.get(file_id)
        if record is None:
            raise NoSuchFileError(file_id)
        return record

    def file_at(self, path: str) -> FileData:
        """Resolve a path and fetch the file record."""
        entry = self.namespace.lookup(path)
        if entry.is_dir:
            raise NoSuchFileError(f"{path!r} is a directory")
        return self.file(entry.target)

    def unlink(self, path: str) -> None:
        """Remove a binding; drops the file record when it was a file."""
        _, target = self.namespace.unbind(path)
        self._files.pop(target, None)

    # -- datum interface -------------------------------------------------------

    def datum_exists(self, datum: DatumId) -> bool:
        """True when the datum currently exists."""
        if datum.kind is DatumKind.FILE:
            return datum.ident in self._files
        try:
            self.namespace.dir_of(datum.ident)
            return True
        except Exception:
            return False

    def read_datum(self, datum: DatumId) -> tuple[Version, object]:
        """Return (version, payload) for a datum.

        File payloads are ``bytes``; directory payloads are the sorted
        binding tuples (name-to-file bindings plus the files' permission
        modes ride along in :meth:`dir_payload_with_modes`).
        """
        if datum.kind is DatumKind.FILE:
            record = self.file(datum.ident)
            return record.version, record.content
        dir_id = datum.ident
        return self.namespace.dir_version(dir_id), self.dir_payload_with_modes(dir_id)

    def dir_payload_with_modes(self, dir_id: str) -> tuple:
        """Directory bindings annotated with each target file's mode.

        The paper: a cache needs "the name-to-file binding and permission
        information" under lease to perform a repeated open locally.
        """
        entries = []
        for entry in self.namespace.dir_payload(dir_id):
            mode = None
            if not entry.is_dir:
                record = self._files.get(entry.target)
                mode = record.mode if record else None
            entries.append((entry.name, entry.target, entry.is_dir, mode))
        return tuple(entries)

    def version_of(self, datum: DatumId) -> Version:
        """Current committed version of a datum."""
        return self.read_datum(datum)[0]

    def commit_file_write(self, datum: DatumId, content: bytes, now: float) -> Version:
        """Commit a write to a file datum; returns the new version.

        Raises:
            PermissionDeniedError: the file's mode forbids writing.
        """
        if datum.kind is not DatumKind.FILE:
            raise NoSuchFileError(f"cannot write directory datum {datum} as a file")
        record = self.file(datum.ident)
        if not record.writable:
            raise PermissionDeniedError(datum.ident)
        version = record.commit_write(content, now)
        if self.on_commit is not None:
            self.on_commit(datum, version)
        return version

    # -- convenience ------------------------------------------------------------

    def file_datum(self, path: str) -> DatumId:
        """The file-contents datum for ``path``."""
        return DatumId.file(self.file_at(path).file_id)

    def dir_datum(self, path: str) -> DatumId:
        """The directory-metadata datum for directory ``path``."""
        return DatumId.directory(self.namespace.resolve_dir(path).dir_id)

    def file_count(self) -> int:
        """Number of files currently stored."""
        return len(self._files)
