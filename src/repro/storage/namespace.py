"""Hierarchical namespace: name-to-file bindings and permissions.

Paths are POSIX-style (``"/bin/latex"``).  Each directory is a datum in
its own right (``DatumId.directory(dir_id)``): looking a name up *reads*
the directory datum; creating, removing or renaming an entry *writes* it
and bumps its version.  This is how the protocol supports a repeated
``open`` entirely from the client cache (paper §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    FileExistsError_,
    NoSuchDirectoryError,
    NoSuchFileError,
    NotADirectoryError_,
)
from repro.storage.file import DirectoryData
from repro.types import Version


@dataclass(frozen=True)
class DirEntry:
    """One binding in a directory: a name mapped to a file or subdirectory."""

    name: str
    target: str  # file_id or dir_id
    is_dir: bool


def split_path(path: str) -> list[str]:
    """Split a normalized absolute path into components.

    Raises:
        ValueError: for relative paths, empty names, or ``.``/``..``.
    """
    if not path.startswith("/"):
        raise ValueError(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise ValueError(f"path must be normalized: {path!r}")
    return parts


class Namespace:
    """The directory tree."""

    ROOT_ID = "dir:/"

    def __init__(self) -> None:
        self._dirs: dict[str, DirectoryData] = {
            self.ROOT_ID: DirectoryData(dir_id=self.ROOT_ID)
        }
        # Directory ids must be stable and unique for the directory's
        # lifetime, *independent of its name*: a renamed directory keeps
        # its id, and re-creating its old path must mint a fresh one
        # (path-derived ids would alias the two — a bug found by the
        # stateful property tests).
        self._next_dir_id = 1
        #: Optional hook called as ``on_change(dir_id, version)`` after a
        #: directory datum's version is bumped (oracle history).
        self.on_change = None

    def _bump(self, record: DirectoryData) -> None:
        record.version += 1
        if self.on_change is not None:
            self.on_change(record.dir_id, record.version)

    # -- navigation ---------------------------------------------------------

    def dir_of(self, dir_id: str) -> DirectoryData:
        """Fetch a directory record by id."""
        record = self._dirs.get(dir_id)
        if record is None:
            raise NoSuchDirectoryError(dir_id)
        return record

    def resolve_dir(self, path: str) -> DirectoryData:
        """Walk ``path`` to a directory record.

        Raises:
            NoSuchDirectoryError: a component is missing.
            NotADirectoryError_: a component is a plain file.
        """
        record = self._dirs[self.ROOT_ID]
        for part in split_path(path):
            entry = record.entries.get(part)
            if entry is None:
                raise NoSuchDirectoryError(f"{path!r}: no component {part!r}")
            if not entry.is_dir:
                raise NotADirectoryError_(f"{path!r}: {part!r} is a file")
            record = self._dirs[entry.target]
        return record

    def lookup(self, path: str) -> DirEntry:
        """Resolve a path to its final binding (file or directory)."""
        parts = split_path(path)
        if not parts:
            return DirEntry(name="/", target=self.ROOT_ID, is_dir=True)
        parent = self.resolve_dir("/" + "/".join(parts[:-1]))
        entry = parent.entries.get(parts[-1])
        if entry is None:
            raise NoSuchFileError(path)
        return entry

    def listdir(self, path: str) -> list[DirEntry]:
        """The bindings of a directory, sorted by name."""
        record = self.resolve_dir(path)
        return sorted(record.entries.values(), key=lambda e: e.name)

    def dir_version(self, dir_id: str) -> Version:
        """Current version of a directory datum."""
        return self.dir_of(dir_id).version

    def dir_payload(self, dir_id: str) -> tuple:
        """The cacheable payload of a directory datum: its sorted bindings."""
        record = self.dir_of(dir_id)
        return tuple(sorted(record.entries.values(), key=lambda e: e.name))

    # -- mutation (each bumps the affected directory's version) -----------------

    def mkdir(self, path: str) -> str:
        """Create a directory; returns its dir_id."""
        parts = split_path(path)
        if not parts:
            raise FileExistsError_("/")
        parent = self.resolve_dir("/" + "/".join(parts[:-1]))
        name = parts[-1]
        if name in parent.entries:
            raise FileExistsError_(path)
        dir_id = f"dir:{self._next_dir_id}"
        self._next_dir_id += 1
        self._dirs[dir_id] = DirectoryData(dir_id=dir_id)
        parent.entries[name] = DirEntry(name=name, target=dir_id, is_dir=True)
        self._bump(parent)
        return dir_id

    def bind(self, path: str, file_id: str) -> str:
        """Bind ``path`` to a file; returns the parent's dir_id.

        Raises:
            FileExistsError_: the name is already bound.
        """
        parts = split_path(path)
        if not parts:
            raise ValueError("cannot bind the root")
        parent = self.resolve_dir("/" + "/".join(parts[:-1]))
        name = parts[-1]
        if name in parent.entries:
            raise FileExistsError_(path)
        parent.entries[name] = DirEntry(name=name, target=file_id, is_dir=False)
        self._bump(parent)
        return parent.dir_id

    def unbind(self, path: str) -> tuple[str, str]:
        """Remove a binding; returns (parent dir_id, removed target id)."""
        parts = split_path(path)
        if not parts:
            raise ValueError("cannot unbind the root")
        parent = self.resolve_dir("/" + "/".join(parts[:-1]))
        name = parts[-1]
        entry = parent.entries.pop(name, None)
        if entry is None:
            raise NoSuchFileError(path)
        if entry.is_dir and self._dirs[entry.target].entries:
            parent.entries[name] = entry  # restore; refuse to drop non-empty dir
            raise FileExistsError_(f"directory not empty: {path!r}")
        if entry.is_dir:
            del self._dirs[entry.target]
        self._bump(parent)
        return parent.dir_id, entry.target

    def rename(self, old: str, new: str) -> list[str]:
        """Rename/move a binding; returns the dir_ids whose datums changed.

        Renaming is the paper's canonical example of a *write* to naming
        information: every affected directory's version is bumped, so
        leaseholders of those directory datums must approve.
        """
        old_parts = split_path(old)
        new_parts = split_path(new)
        if not old_parts or not new_parts:
            raise ValueError("cannot rename the root")
        src = self.resolve_dir("/" + "/".join(old_parts[:-1]))
        dst = self.resolve_dir("/" + "/".join(new_parts[:-1]))
        old_name, new_name = old_parts[-1], new_parts[-1]
        entry = src.entries.get(old_name)
        if entry is None:
            raise NoSuchFileError(old)
        if new_name in dst.entries:
            raise FileExistsError_(new)
        del src.entries[old_name]
        dst.entries[new_name] = DirEntry(
            name=new_name, target=entry.target, is_dir=entry.is_dir
        )
        self._bump(src)
        touched = [src.dir_id]
        if dst.dir_id != src.dir_id:
            self._bump(dst)
            touched.append(dst.dir_id)
        return touched

    def parent_dir_id(self, path: str) -> str:
        """The dir_id of ``path``'s parent directory."""
        parts = split_path(path)
        return self.resolve_dir("/" + "/".join(parts[:-1])).dir_id
