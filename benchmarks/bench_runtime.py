"""Asyncio load benchmark; emits/gates ``BENCH_runtime.json``.

Thin entry point over :mod:`repro.runtime.bench`: drives thousands of
concurrent pipelined clients against one server node over the in-memory
hub, reports requests/sec and p50/p99 latency, and (with ``--check``)
enforces the committed baseline at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_runtime.py                # measure
    PYTHONPATH=src python benchmarks/bench_runtime.py --check        # CI gate
    PYTHONPATH=src python benchmarks/bench_runtime.py --pin          # re-pin
    PYTHONPATH=src python benchmarks/bench_runtime.py --clients 500  # smoke
"""

from __future__ import annotations

import sys

from repro.runtime.bench import main

if __name__ == "__main__":
    sys.exit(main())
