"""E-F2: regenerate Figure 2 (consistency delay per operation vs term)."""

import pytest

from repro.experiments import figure2


class TestFigure2:
    def test_regenerate_figure2(self, benchmark):
        result = benchmark.pedantic(
            lambda: figure2.run(trace_duration=3600.0), rounds=1, iterations=1
        )
        print()
        print(figure2.render(result))

        terms = result.terms
        # at term 0 every read pays a 2.54 ms round trip
        assert result.curves["S=1"][0] == pytest.approx(2.43, abs=0.05)
        # much of the benefit arrives by ~10 s (paper §3.2)
        ten = terms.index(10.0)
        assert result.curves["S=1"][ten] < 0.15 * result.curves["S=1"][0]
        # curves for different S stay within a fraction of the plot scale
        scale = result.curves["S=1"][0]
        assert abs(result.curves["S=10"][ten] - result.curves["S=1"][ten]) < 0.15 * scale
        # a tiny positive term is *worse* than zero under heavy sharing:
        # writes start paying approval time while reads barely benefit
        half = terms.index(0.5)
        assert result.curves["S=40"][half] > result.curves["S=40"][0]
        # beyond that bump, delay decreases monotonically with the term
        for label, series in result.curves.items():
            if label.startswith("S="):
                tail = series[1:]
                assert all(a >= b - 1e-12 for a, b in zip(tail, tail[1:])), label

    def test_validate_delay_against_full_protocol_stack(self, benchmark):
        """E-SIM (delay side): the full stack's observed mean read latency
        matches the fast replay's modeled consistency delay."""
        fast, full = benchmark.pedantic(
            lambda: figure2.validate_delay_with_full_simulator(
                term=10.0, trace_duration=900.0
            ),
            rounds=1,
            iterations=1,
        )
        print(f"\nE-SIM delay at 10 s: fast={1e3 * fast:.4f} ms, full={1e3 * full:.4f} ms")
        assert full == pytest.approx(fast, rel=0.1)
