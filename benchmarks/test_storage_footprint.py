"""§2's storage argument: per-lease server state is a couple of references.

The paper: "The server requires a record of each leaseholder's identity
and a list of the leases it holds; each lease requires only a couple of
pointers.  For a client holding about one hundred leases, the total is
around one kilobyte per client."  Python objects are fatter than 1989 C
structs, but the *shape* must hold: per-lease cost is O(1) and flat in
both client count and datum count, and expired records are reclaimed.
"""

import gc
import sys

from repro.lease.table import LeaseTable
from repro.types import DatumId


def deep_size(table: LeaseTable) -> int:
    """Approximate bytes held by the table's containers and lease records."""
    gc.collect()
    seen = set()
    total = 0
    stack = [table._by_datum, table._by_holder]
    for lease in table.iter_leases():
        stack.append(lease)
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        total += sys.getsizeof(obj)
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (set, frozenset, list, tuple)):
            stack.extend(obj)
    return total


def bytes_per_lease(n_clients: int, leases_per_client: int) -> float:
    """Measure marginal per-lease storage at a given scale."""
    table = LeaseTable()
    for c in range(n_clients):
        for i in range(leases_per_client):
            table.grant(DatumId.file(f"file:{i}"), f"c{c}", now=0.0, term=1e9)
    return deep_size(table) / (n_clients * leases_per_client)


class TestStorageFootprint:
    def test_per_lease_cost_is_flat(self, benchmark):
        """O(1) per lease: the per-lease byte cost must not grow with scale."""

        def measure():
            small = bytes_per_lease(n_clients=4, leases_per_client=25)
            large = bytes_per_lease(n_clients=40, leases_per_client=100)
            return small, large

        small, large = benchmark.pedantic(measure, rounds=1, iterations=1)
        print(
            f"\nper-lease storage: {small:.0f} B at 100 leases, "
            f"{large:.0f} B at 4000 leases "
            f"(paper: 'a couple of pointers', ~10 B/lease in 1989 C)"
        )
        assert large < small * 1.5  # flat, not superlinear

    def test_hundred_leases_is_kilobytes_not_megabytes(self):
        """The paper's 1 KB/client becomes a few KB in Python — same order
        of practicality."""
        table = LeaseTable()
        for i in range(100):
            table.grant(DatumId.file(f"file:{i}"), "c0", now=0.0, term=1e9)
        size = deep_size(table)
        assert size < 100_000, f"100 leases cost {size} bytes"

    def test_expired_records_reclaimed(self, benchmark):
        """Short terms keep the table small (§2): after a sweep, storage
        returns to baseline."""

        def churn():
            table = LeaseTable()
            for round_no in range(10):
                now = float(round_no)
                for i in range(200):
                    table.grant(DatumId.file(f"f{i}"), f"c{i % 8}", now=now, term=0.5)
                table.expire_sweep(now + 0.6)
            return table.lease_count()

        assert benchmark.pedantic(churn, rounds=1, iterations=1) == 0
