"""Sweep-executor benchmark; emits/gates ``BENCH_sweep.json``.

Thin entry point over :mod:`repro.parallel.baseline`: runs the pinned
scenario mix serially and through the parallel ``SweepPool``, reports
wall-clock, events/sec and speedup, and (with ``--check``) enforces the
committed baseline at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py                 # measure
    PYTHONPATH=src python benchmarks/bench_sweep.py --check         # CI gate
    PYTHONPATH=src python benchmarks/bench_sweep.py --pin           # re-pin
"""

from __future__ import annotations

import sys

from repro.parallel.baseline import main

if __name__ == "__main__":
    sys.exit(main())
