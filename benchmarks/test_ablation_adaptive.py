"""A-ADPT: adaptive per-file terms from the analytic model (§4)."""

from repro.experiments import ablations


class TestAdaptiveAblation:
    def test_adaptive_vs_fixed(self, benchmark):
        results = benchmark.pedantic(ablations.run_adaptive, rounds=1, iterations=1)
        print()
        for r in results:
            print(
                f"{r.variant:>10}: {r.consistency_msgs} consistency msgs, "
                f"mean write latency {1e3 * r.mean_write_latency:.2f} ms"
            )
        fixed, adaptive = results
        assert adaptive.consistency_msgs < fixed.consistency_msgs
        assert adaptive.mean_write_latency <= fixed.mean_write_latency * 1.1
