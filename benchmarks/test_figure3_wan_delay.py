"""E-F3: regenerate Figure 3 (added delay at a 100 ms round trip)."""

import pytest

from repro.experiments import figure3


class TestFigure3:
    def test_regenerate_figure3(self, benchmark):
        result = benchmark.pedantic(figure3.run, rounds=1, iterations=1)
        print()
        print(figure3.render(result))

        # paper: 10 s degrades response 10.1%, 30 s degrades it 3.6%
        assert result.degradation_10s == pytest.approx(0.101, abs=0.004)
        assert result.degradation_30s == pytest.approx(0.036, abs=0.002)
        # at term 0 the delay approaches one 100 ms round trip (read share)
        assert result.curves["S=1"][0] == pytest.approx(95.6, abs=0.5)
        # 10-30 s terms remain adequate even on the WAN (§3.3)
        ten = result.terms.index(10.0)
        assert result.curves["S=1"][ten] < 0.12 * result.curves["S=1"][0]
