"""Single-run core benchmark; emits/gates ``BENCH_core.json``.

Thin entry point over :mod:`repro.profile.core`: measures the kernel/
network storm workload and the serial pinned scenario mix, reports
events/sec for each, and (with ``--check``) enforces the committed
baseline at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_core.py                 # measure
    PYTHONPATH=src python benchmarks/bench_core.py --check         # CI gate
    PYTHONPATH=src python benchmarks/bench_core.py --pin           # re-pin
"""

from __future__ import annotations

import sys

from repro.profile.core import main

if __name__ == "__main__":
    sys.exit(main())
