"""E-CL: the paper's §3.2 headline numbers, checked end to end."""

from repro.experiments import claims


class TestClaims:
    def test_all_headline_claims(self, benchmark):
        results = benchmark.pedantic(
            lambda: claims.run(trace_duration=3600.0), rounds=1, iterations=1
        )
        print()
        print(claims.render(results))
        failing = [c for c in results if not c.passed]
        assert not failing, ", ".join(c.claim_id for c in failing)
