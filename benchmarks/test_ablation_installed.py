"""A-INST: the installed-files optimization (§4)."""

from repro.experiments import ablations


class TestInstalledAblation:
    def test_covers_vs_per_client(self, benchmark):
        results = benchmark.pedantic(ablations.run_installed, rounds=1, iterations=1)
        print()
        for r in results:
            print(
                f"{r.variant:>18}: {r.consistency_msgs} consistency msgs, "
                f"{r.server_lease_records} lease records, update in "
                f"{r.update_latency:.2f} s, {r.approvals} approval msgs"
            )
        per_client, covers = results
        assert covers.server_lease_records == 0
        assert covers.approvals == 0
        assert covers.consistency_msgs < per_client.consistency_msgs
        assert per_client.approvals > 0
        # the §4 trade: delayed update waits out the announced term
        assert covers.update_latency > per_client.update_latency
