"""EXT: adaptive lease coverage (§7) — promotion economics."""

from repro.ext.coverage import AdaptiveCoverageServerEngine, CoveragePolicy
from repro.lease.policy import FixedTermPolicy
from repro.sim.driver import build_cluster


class _FastEngine(AdaptiveCoverageServerEngine):
    coverage_policy = CoveragePolicy(
        period=10.0, promote_read_rate=0.1, promote_max_write_rate=0.001
    )


def run_hot_binary(adaptive: bool, n_clients: int = 8, duration: float = 240.0):
    """N clients re-read one hot binary; count server consistency traffic."""
    kwargs = dict(
        n_clients=n_clients,
        policy=FixedTermPolicy(10.0),
        setup_store=lambda s: s.create_file("/hot-binary", b"bin"),
    )
    if adaptive:
        kwargs["server_engine_factory"] = _FastEngine
    cluster = build_cluster(**kwargs)
    datum = cluster.store.file_datum("/hot-binary")
    for i, client in enumerate(cluster.clients):
        t = 0.1 + 0.02 * i
        while t < duration:
            cluster.kernel.schedule_at(t, lambda c=client, d=datum: c.read(d))
            t += 2.0
    cluster.run(until=duration + 5.0)
    assert cluster.oracle.clean
    stats = cluster.network.stats["server"]
    return stats.handled(["lease/read", "lease/extend", "lease/approve"])


class TestAdaptiveCoverage:
    def test_promotion_cuts_extension_traffic(self, benchmark):
        def measure():
            return run_hot_binary(True), run_hot_binary(False)

        adaptive_msgs, static_msgs = benchmark.pedantic(measure, rounds=1, iterations=1)
        print(
            f"\nhot binary, 8 clients, 240 s: adaptive coverage = "
            f"{adaptive_msgs} consistency msgs (+announce multicasts), "
            f"static per-client leases = {static_msgs}"
        )
        assert adaptive_msgs < static_msgs * 0.6
