"""A-BATCH: batched vs per-file lease extension (§3.1)."""

from repro.experiments import ablations


class TestBatchingAblation:
    def test_batching_effect(self, benchmark):
        results = benchmark.pedantic(
            lambda: ablations.run_batching(terms=(2.0, 10.0)), rounds=1, iterations=1
        )
        print()
        for r in results:
            print(
                f"term {r.term:>4.0f} s: batched {r.batched:.3f} vs per-file "
                f"{r.per_file:.3f} relative load ({r.improvement:.1f}x better)"
            )
        for r in results:
            assert r.batched < r.per_file
        at_10 = next(r for r in results if r.term == 10.0)
        assert at_10.improvement > 2.0
