"""E-SCALE: the §3.3 future-systems analysis."""

from repro.experiments import scaling


class TestScaling:
    def test_scaling_analysis(self, benchmark):
        result = benchmark.pedantic(scaling.run, rounds=1, iterations=1)
        print()
        print(scaling.render(result))
        assert result.knee_terms[-1] < result.knee_terms[0]
        gains = [result.capacity_gain(i) for i in range(len(result.speedups))]
        assert gains == sorted(gains)
        assert gains[0] > 5.0
