"""§3.2 extension: the Unix block-level semantics predictions."""

from repro.experiments import unix_variant


class TestUnixVariant:
    def test_block_level_predictions(self, benchmark):
        result = benchmark.pedantic(
            lambda: unix_variant.run(duration=3600.0), rounds=1, iterations=1
        )
        print()
        print(unix_variant.render(result))
        assert result.block.read_rate > result.logical.read_rate
        assert result.block.read_write_ratio < result.logical.read_write_ratio
        assert result.knee_sharper
        assert result.max_profitable_sharing("block") < result.max_profitable_sharing(
            "logical"
        )
