"""FT: the §5 fault-tolerance bounds and the §6 protocol comparison."""

import pytest

from repro.baselines import compare_protocols, render
from repro.lease.policy import FixedTermPolicy
from repro.sim.driver import build_cluster


class TestFaultBounds:
    def test_partition_write_delay_tracks_term(self, benchmark):
        """The write delay under a partitioned leaseholder equals the
        remaining lease term, for every term."""

        def measure():
            delays = {}
            for term in (2.0, 5.0, 10.0):
                cluster = build_cluster(
                    n_clients=2,
                    policy=FixedTermPolicy(term),
                    setup_store=lambda store: store.create_file("/f", b"v1"),
                )
                datum = cluster.store.file_datum("/f")
                a, b = cluster.clients
                cluster.run_until_complete(a, a.read(datum))
                cluster.faults.isolate_host("c0")
                result = cluster.run_until_complete(b, b.write(datum, b"v2"), limit=60.0)
                delays[term] = result.latency
            return delays

        delays = benchmark.pedantic(measure, rounds=1, iterations=1)
        print()
        for term, delay in delays.items():
            print(f"term {term:>4.0f} s -> write delayed {delay:.2f} s")
            assert delay == pytest.approx(term, abs=0.2)


class TestProtocolComparison:
    def test_section6_comparison(self, benchmark):
        outcomes = benchmark.pedantic(
            lambda: compare_protocols(seed=0), rounds=1, iterations=1
        )
        print()
        print(render(outcomes))
        by_name = {o.protocol: o for o in outcomes}
        assert by_name["leases (10 s)"].stale_reads == 0
        assert by_name["leases (10 s)"].write_availability == 1.0
        assert by_name["callbacks (term inf)"].write_availability < 0.8
        assert by_name["NFS TTL (10 s)"].stale_reads > 0
        assert (
            by_name["leases (10 s)"].consistency_msgs
            < by_name["check-on-use (term 0)"].consistency_msgs
        )
