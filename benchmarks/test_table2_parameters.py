"""E-T2: regenerate Table 2 (parameters for file caching in V)."""

import pytest

from repro.experiments import table2


class TestTable2:
    def test_regenerate_table2(self, benchmark):
        result = benchmark.pedantic(
            lambda: table2.run(trace_duration=3600.0), rounds=1, iterations=1
        )
        print()
        print(table2.render(result))
        # the trace must measure back the configured Table 2 values
        assert result.measured.read_rate == pytest.approx(0.864, rel=0.08)
        assert result.measured.write_rate == pytest.approx(0.040, rel=0.12)
        assert result.measured.installed_read_fraction == pytest.approx(0.5, abs=0.03)
        assert result.measured.installed_write_count == 0
