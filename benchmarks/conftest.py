"""Shared fixtures for the benchmark suite.

Benchmarks double as the experiment harness: each prints the table or
series the paper reports (run with ``-s`` to see them) and asserts the
relationships the paper claims, while pytest-benchmark times the
computation that produces them.
"""

import pytest

from repro.analytic import v_params
from repro.workload.vtrace import VTraceConfig, generate_v_trace


@pytest.fixture(scope="session")
def v_trace():
    """The synthetic V compile trace used across benchmarks."""
    return generate_v_trace(VTraceConfig(duration=3600.0, seed=0))


@pytest.fixture(scope="session")
def params_s1():
    return v_params(1)
