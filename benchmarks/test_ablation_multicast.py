"""A-MCAST: multicast vs unicast write approvals (§3.1 footnotes 6-7)."""

import math

from repro.experiments import ablations


class TestMulticastAblation:
    def test_benefit_factor_shift(self, benchmark):
        results = benchmark.pedantic(ablations.run_multicast, rounds=1, iterations=1)
        print()
        for r in results:
            be_u = "inf" if math.isinf(r.break_even_unicast) else f"{r.break_even_unicast:.2f}"
            print(
                f"S={r.sharing:>2}: alpha mcast={r.alpha_multicast:5.2f} "
                f"ucast={r.alpha_unicast:5.2f}; break-even t_c "
                f"mcast={r.break_even_multicast:5.2f} s ucast={be_u} s"
            )
        r40 = next(r for r in results if r.sharing == 40)
        # at S=40 leasing still (barely) pays with multicast, not without
        assert r40.alpha_multicast > 1.0 > r40.alpha_unicast
        assert math.isinf(r40.break_even_unicast)
