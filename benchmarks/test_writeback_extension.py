"""EXT: write-back economics (the §2/§6 non-write-through extension)."""


from repro.ext import build_writeback_cluster
from repro.ext.writeback import WriteBackClientConfig
from repro.lease.policy import FixedTermPolicy


def run_editor_session(write_back: bool, n_saves: int = 30):
    """One client saving a document repeatedly; another reads at the end."""
    cluster = build_writeback_cluster(
        n_clients=2,
        policy=FixedTermPolicy(10.0),
        setup_store=lambda s: s.create_file("/draft", b"v1"),
        client_config=WriteBackClientConfig(rpc_timeout=1.0, max_retries=30),
    )
    datum = cluster.store.file_datum("/draft")
    editor, reader = cluster.clients
    if write_back:
        cluster.run_until_complete(editor, editor.acquire_write(datum))
        for i in range(n_saves):
            cluster.run_until_complete(editor, editor.local_write(datum, b"s%d" % i))
    else:
        for i in range(n_saves):
            cluster.run_until_complete(editor, editor.write(datum, b"s%d" % i), limit=60)
    result = cluster.run_until_complete(reader, reader.read(datum), limit=60)
    assert result.value[1] == b"s%d" % (n_saves - 1)
    assert cluster.oracle.clean
    return cluster.network.stats["server"].handled()


class TestWriteBack:
    def test_write_absorption_economics(self, benchmark):
        def measure():
            return run_editor_session(True), run_editor_session(False)

        wb_msgs, wt_msgs = benchmark.pedantic(measure, rounds=1, iterations=1)
        print(
            f"\n30 editor saves + 1 reader: write-back={wb_msgs} server msgs, "
            f"write-through={wt_msgs} ({wt_msgs / wb_msgs:.1f}x)"
        )
        assert wb_msgs < wt_msgs / 4
