"""Performance microbenchmarks of the substrate itself.

Not a paper artifact — these track the reproduction's own efficiency:
kernel event throughput, network message throughput, trace-replay speed,
codec speed, and end-to-end simulated operations per second.
"""

import json

from repro.lease.policy import FixedTermPolicy
from repro.protocol.codec import decode_message, encode_message
from repro.protocol.messages import ReadReply
from repro.sim.driver import build_cluster
from repro.sim.kernel import Kernel
from repro.types import DatumId
from repro.workload.tracesim import simulate_trace


class TestKernel:
    def test_event_dispatch_throughput(self, benchmark):
        def run_events():
            kernel = Kernel()
            for i in range(10_000):
                kernel.schedule(i * 1e-6, lambda: None)
            kernel.run()

        benchmark(run_events)


class TestTraceReplay:
    def test_trace_replay_throughput(self, benchmark, v_trace, params_s1):
        result = benchmark(lambda: simulate_trace(v_trace, 10.0, params_s1))
        assert result.n_reads > 0


class TestCodec:
    def test_roundtrip_throughput(self, benchmark):
        msg = ReadReply(1, DatumId.file("file:1"), version=3, payload=b"x" * 512, term=10.0)

        def roundtrip():
            return decode_message(json.loads(json.dumps(encode_message(msg))))

        assert benchmark(roundtrip) == msg


class TestRuntimeThroughput:
    def test_asyncio_cached_reads_per_second(self, benchmark):
        """Wall-clock cost of cached reads through the asyncio runtime
        (lease hit path: no I/O, just the engine and the event loop)."""
        import asyncio

        from repro.protocol.client import ClientConfig
        from repro.protocol.server import ServerConfig
        from repro.runtime import InMemoryHub, LeaseClientNode, LeaseServerNode
        from repro.storage.store import FileStore

        async def run_reads():
            hub = InMemoryHub()
            store = FileStore()
            store.create_file("/f", b"payload")
            server = LeaseServerNode(
                hub.endpoint("server"),
                store,
                FixedTermPolicy(60.0),
                config=ServerConfig(epsilon=0.01, announce_period=10.0, sweep_period=60.0),
            )
            client = LeaseClientNode(
                hub.endpoint("c0"), "server", config=ClientConfig(epsilon=0.01)
            )
            datum = store.file_datum("/f")
            await client.read(datum)  # warm: fetch + lease
            for _ in range(2000):
                await client.read(datum)
            await client.close()
            await server.close()
            return 2000

        assert benchmark.pedantic(
            lambda: asyncio.run(run_reads()), rounds=3, iterations=1
        ) == 2000


class TestEndToEnd:
    def test_simulated_reads_per_second(self, benchmark):
        """Wall-clock cost of driving 2000 leased reads end to end."""

        def run_reads():
            cluster = build_cluster(
                n_clients=4,
                policy=FixedTermPolicy(10.0),
                setup_store=lambda store: store.create_file("/f", b"v1"),
            )
            datum = cluster.store.file_datum("/f")
            for k in range(500):
                for client in cluster.clients:
                    cluster.kernel.schedule_at(
                        0.001 * k, lambda c=client, d=datum: c.read(d)
                    )
            # bounded run: the server's housekeeping timers re-arm forever
            cluster.run(until=5.0)
            return cluster.oracle.reads_checked

        assert benchmark.pedantic(run_reads, rounds=3, iterations=1) == 2000
