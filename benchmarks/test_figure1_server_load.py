"""E-F1 / E-SIM: regenerate Figure 1 (server consistency load vs term)."""

import pytest

from repro.experiments import figure1


class TestFigure1:
    def test_regenerate_figure1(self, benchmark):
        result = benchmark.pedantic(
            lambda: figure1.run(trace_duration=3600.0), rounds=1, iterations=1
        )
        print()
        print(figure1.render(result))

        terms = result.terms
        ten = terms.index(10.0)

        # paper: at S=1 a 10 s term cuts consistency traffic to ~10%
        assert result.curves["S=1"][ten] == pytest.approx(0.10, abs=0.01)
        # the knee: most of the benefit arrives within a few seconds
        five = terms.index(5.0)
        assert result.curves["S=1"][five] < 0.25
        # sharing orders the curves; heavy sharing can make leasing lose
        half = terms.index(0.5)
        assert result.curves["S=40"][half] > 1.0
        # the trace curve validates the model with a sharper, earlier knee
        for i, term in enumerate(terms):
            if 1.0 <= term <= 10.0:
                assert result.curves["Trace"][i] < result.curves["S=1"][i]

    def test_validate_against_full_protocol_stack(self, benchmark):
        """E-SIM: the fast replay agrees with the discrete-event stack
        across the whole term sweep."""
        sweep = benchmark.pedantic(
            lambda: figure1.validate_sweep(
                terms=(0.0, 2.0, 10.0, 30.0), trace_duration=900.0
            ),
            rounds=1,
            iterations=1,
        )
        print()
        for term, (fast, full) in sorted(sweep.items()):
            print(f"E-SIM at {term:>4.0f} s: fast replay={fast:.4f}, full stack={full:.4f}")
            assert full == pytest.approx(fast, rel=0.1), term
