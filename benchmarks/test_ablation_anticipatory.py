"""A-ANT: anticipatory vs on-demand lease extension (§4)."""

from repro.experiments import ablations


class TestAnticipatoryAblation:
    def test_latency_vs_load_trade(self, benchmark):
        results = benchmark.pedantic(ablations.run_anticipatory, rounds=1, iterations=1)
        print()
        for r in results:
            print(
                f"{r.variant:>12}: mean read latency "
                f"{1e3 * r.mean_read_latency:.3f} ms, "
                f"{r.consistency_msgs} consistency msgs"
            )
        on_demand, anticipatory = results
        # §4: anticipation improves response time at the cost of load
        assert anticipatory.mean_read_latency < on_demand.mean_read_latency / 5
        assert anticipatory.consistency_msgs > on_demand.consistency_msgs
