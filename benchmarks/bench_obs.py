"""Measure the observability layer's overhead; emit ``BENCH_obs.json``.

Runs the end-to-end simulated-read scenario (the same workload as
``benchmarks/test_engine_throughput.py::TestEndToEnd``) three ways:

* ``disabled`` — ``obs=None``: the hot paths pay one ``None``/``active``
  check per emission site.  The acceptance bar is < 5 % overhead versus
  the pre-instrumentation baseline; since that baseline no longer exists
  in-tree, the artifact records disabled-vs-enabled and the disabled
  path's absolute cost so regressions are visible run over run.
* ``inactive_bus`` — a real bus with ``active=False``: components hold a
  bus object but never build payloads.
* ``enabled`` — a capacity-bounded active bus recording everything.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py [--rounds N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import time

from repro.lease.policy import FixedTermPolicy
from repro.obs import TraceBus
from repro.sim.driver import build_cluster

N_CLIENTS = 4
N_ROUNDS_DEFAULT = 5
READS_PER_CLIENT = 500


def run_scenario(obs: TraceBus | None) -> int:
    """Drive 2000 leased reads end to end; returns reads checked."""
    cluster = build_cluster(
        n_clients=N_CLIENTS,
        policy=FixedTermPolicy(10.0),
        setup_store=lambda store: store.create_file("/f", b"v1"),
        obs=obs,
    )
    datum = cluster.store.file_datum("/f")
    for k in range(READS_PER_CLIENT):
        for client in cluster.clients:
            cluster.kernel.schedule_at(0.001 * k, lambda c=client, d=datum: c.read(d))
    cluster.run(until=5.0)
    return cluster.oracle.reads_checked


def time_mode(make_obs, rounds: int) -> dict:
    """Best-of-``rounds`` wall time (seconds) for one obs configuration."""
    times = []
    reads = 0
    for _ in range(rounds):
        obs = make_obs()
        start = time.perf_counter()
        reads = run_scenario(obs)
        times.append(time.perf_counter() - start)
    return {
        "best_s": min(times),
        "median_s": statistics.median(times),
        "reads": reads,
    }


def main() -> dict:
    """Run all three modes and write the JSON artifact."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=N_ROUNDS_DEFAULT)
    parser.add_argument("--out", default="BENCH_obs.json")
    args = parser.parse_args()

    modes = {
        "disabled": lambda: None,
        "inactive_bus": lambda: TraceBus(active=False),
        "enabled": lambda: TraceBus(capacity=65536),
    }
    results = {name: time_mode(make, args.rounds) for name, make in modes.items()}

    disabled = results["disabled"]["best_s"]
    report = {
        "benchmark": "end_to_end_simulated_reads",
        "reads_per_run": results["disabled"]["reads"],
        "rounds": args.rounds,
        "modes": results,
        # how much a *disabled* observability layer costs relative to a
        # fully active one (the interesting direction is the first ratio:
        # it must stay ~1.0 for the instrumentation to be free by default)
        "overhead_ratio_inactive_bus_vs_disabled": (
            results["inactive_bus"]["best_s"] / disabled
        ),
        "overhead_ratio_enabled_vs_disabled": (
            results["enabled"]["best_s"] / disabled
        ),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    return report


if __name__ == "__main__":
    main()
