"""Build script.

The default build is pure python (``pip install -e .`` needs no
compiler).  Set ``REPRO_BUILD_COMPILED=1`` to additionally compile the
hot core with mypyc: the twin sources are generated into ``repro._hot``
(see :mod:`repro._build`) and handed to ``mypycify``; at runtime
:mod:`repro._compiled` aliases them over the canonical modules unless
``REPRO_PURE=1`` forces the fallback.
"""

import importlib.util
import os

from setuptools import setup


def _compiled_build_kwargs():
    if os.environ.get("REPRO_BUILD_COMPILED") != "1":
        return {}
    try:
        from mypyc.build import mypycify
    except ImportError as exc:
        raise SystemExit(
            "REPRO_BUILD_COMPILED=1 requires mypyc, which ships with mypy: "
            "pip install 'mypy>=1.8' (or use the [compiled] extra)."
        ) from exc
    # Load repro._build by path: the repro package itself is not
    # importable yet at build time, and _build is stdlib-only.
    here = os.path.dirname(os.path.abspath(__file__))
    build_py = os.path.join(here, "src", "repro", "_build.py")
    spec = importlib.util.spec_from_file_location("_repro_build", build_py)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    paths = module.prepare_sources()
    return {"ext_modules": mypycify(["--ignore-missing-imports"] + paths)}


setup(**_compiled_build_kwargs())
